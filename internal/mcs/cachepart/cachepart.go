// Package cachepart implements cache consistency (Goodman) — per-
// variable sequential consistency — under partial replication, as an
// exploration of the paper's §7 open question: whether criteria other
// than (and in places stronger than) PRAM admit efficient partial-
// replication implementations.
//
// Cache consistency is incomparable with PRAM: it totally orders all
// operations on each single variable (stronger than PRAM's per-sender
// guarantee on that axis) but imposes nothing across variables (weaker
// than PRAM's program order). Crucially, its synchronization is
// per-variable, so it *is* efficient in the paper's sense: every
// message about x stays inside C(x).
//
// Protocol: x's owner under the placement epoch — the lowest member of
// C(x) unless pinned elsewhere — acts as x's sequencer. A write on x
// travels to the sequencer, receives a per-variable sequence number
// and is multicast to C(x); replicas apply each variable's updates in
// sequence order; the writer blocks until its own update is applied
// locally (per-variable read-your-writes, which makes each variable's
// projection sequentially consistent with local wait-free reads).
// Reads are local.
//
// The sequencer role migrates through the epoch reconfiguration
// handshake. Requests for an assignment-changed variable park — at the
// writer behind the fence, and at the old sequencer once it armed its
// own fence, so no update is ever multicast behind the sequencer's
// fence frame. The fence barrier therefore leaves every live clique
// member with the variable's complete old-epoch stream applied, the
// per-variable numbering restarts at zero cluster-wide, and the parked
// requests re-enter — re-sequenced by the node that kept ownership, or
// forwarded (with the original writer's identity) to the node that
// gained it. Updates carry the sequencer's epoch as transport
// metadata; a receiver that sees a future epoch parks the update until
// its own commit arrives.
//
// Writes block on a round trip, so updates are not coalesced; all
// per-variable state lives in flat arrays indexed by interned VarIDs
// and the single-destination request payload is recycled by the
// sequencer.
package cachepart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A request is (U32 wseq, VarVal varID/value) with the
// writer identified by the message source; an update is
// (U32 seq, U32 writer, U32 wseq, VarVal varID/value). A forward is a
// request re-routed across an ownership move — (U32 writer, U32 wseq,
// VarVal varID/value) — carrying the original writer explicitly.
const (
	KindRequest = "cache.request" // writer → variable sequencer
	KindUpdate  = "cache.update"  // sequencer → C(x)
	KindForward = "cache.forward" // ex-sequencer → current sequencer
)

// bufferedUpd is an out-of-order per-variable update; v is a pooled
// copy of the value bytes, recycled at apply.
type bufferedUpd struct {
	writer int
	wseq   int
	v      []byte
}

// heldReq is a write request parked across an epoch transition: at the
// old sequencer (arrived after it fenced the variable) or at the new
// one (arrived before its own commit). v is a pooled copy.
type heldReq struct {
	writer int
	wseq   int
	xi     int
	v      []byte
}

// futureUpd is an update multicast under an epoch this node has not
// committed yet — the sequencer flipped first. Parked until the commit
// arrives. v is a pooled copy.
type futureUpd struct {
	epoch  uint64
	seq    int
	writer int
	wseq   int
	xi     int
	v      []byte
}

// Node is one cache-consistent MCS process.
type Node struct {
	cfg mcs.Config
	id  int

	mu       sync.Mutex
	ix       *sharegraph.Index // current epoch's index; swapped under mu at a flip
	replicas mcs.Replicas      // by VarID
	tags     []mcs.WriteTag    // by VarID: last applied write (for snapshots)
	wseq     int
	nextSeq  []int                 // next per-variable sequence to apply, by VarID
	buffered []map[int]bufferedUpd // by VarID; maps lazily allocated
	// ownDone is, per VarID, the settle cursor for this node's own
	// writes: own writes with wseq below it have taken local effect —
	// applied by the drain, or covered by an adopted snapshot prefix.
	// Keyed to the global write counter (which the update wire format
	// carries) rather than a count of apply events, it is idempotent
	// under fault-layer duplicates and across recovery windows.
	ownDone []int
	applied *sync.Cond

	rcv       *mcs.Recovery
	rejoining bool

	// Epoch reconfiguration: sequencer handoff state.
	rcf      *mcs.Reconfig
	fence    mcs.Fence
	heldReqs []heldReq   // requests parked across the transition window
	futures  []futureUpd // updates from an epoch ahead of this node's

	// Sequencer state: next sequence per owned VarID. Durable across the
	// sequencer's own crashes — the counters cannot be reconstructed
	// from replicas (in-flight multicasts may outrun every peer's apply
	// cursor), and a reused sequence number would fork a variable's
	// total order. An epoch flip that changes a variable's assignment
	// resets its counter cluster-wide instead: readiness certified that
	// every live clique member drained the old stream in full.
	vseq []int
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			replicas: mcs.NewReplicas(ix.NumVars()),
			tags:     mcs.NewWriteTags(ix.NumVars()),
			nextSeq:  make([]int, ix.NumVars()),
			buffered: make([]map[int]bufferedUpd, ix.NumVars()),
			ownDone:  make([]int, ix.NumVars()),
			vseq:     make([]int, ix.NumVars()),
		}
		node.applied = sync.NewCond(&node.mu)
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		node.rcf = mcs.NewReconfig(cfg, i, &node.mu, node, ix)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// ownerLocked resolves x's sequencer under the current epoch. Called
// with mu held.
func (n *Node) ownerLocked(xi int) (int, error) {
	own := n.ix.Owner(xi)
	if own < 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return own, nil
}

// issueLocked records and sends one write request to x's sequencer,
// returning the write's per-process sequence number. Called with mu
// held, and the send happens with mu still held: the engine's fence
// frames go out under the same lock, so a request that passed the
// fence check always precedes this writer's fence on the channel.
func (n *Node) issueLocked(xi, own int, v []byte) (wseq int) {
	wseq = n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: own, Kind: KindRequest,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi), Epoch: n.ix.Epoch(),
	})
	return wseq
}

// beginWrite resolves the write's variable and sequencer under the
// fence: a write to an assignment-changed variable parks until the
// epoch transition resolves, then routes under the (possibly new)
// epoch. Returns with mu HELD on success.
func (n *Node) beginWrite(x string) (xi, own int, err error) {
	n.mu.Lock()
	xi = n.ix.ID(x)
	if err := n.fence.WaitLocked(n.cfg, n.id, xi, x); err != nil {
		n.mu.Unlock()
		return 0, 0, err
	}
	// Re-check against the possibly flipped index: the fence lifts at
	// the epoch boundary, and this node may have shed the variable.
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	own, err = n.ownerLocked(xi)
	if err != nil {
		n.mu.Unlock()
		return 0, 0, err
	}
	return xi, own, nil
}

// Put performs w_i(x)v: route through x's sequencer, block until the
// update is applied locally.
func (n *Node) Put(x string, v []byte) error {
	xi, own, err := n.beginWrite(x)
	if err != nil {
		return err
	}
	wseq := n.issueLocked(xi, own, v)
	// Block until this write has taken local effect, so the process's
	// operations on x serialize in program order.
	defer n.mu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.applied,
			func() bool { return n.ownDone[xi] > wseq },
			func() string { return fmt.Sprintf("cachepart: node %d write #%d to %s", n.id, wseq, x) })
	}
	for n.ownDone[xi] <= wseq {
		n.applied.Wait()
	}
	return nil
}

// pending is an outstanding asynchronous write on one variable: it
// completes when the write has taken local effect — exactly where the
// synchronous Put would have returned. Requests reach x's sequencer in
// issue order (per-pair FIFO), so outstanding writes on one variable
// complete in issue order.
type pending struct {
	n     *Node
	varID int
	wseq  int
}

// Wait blocks until the write is applied locally.
func (p *pending) Wait() error {
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.applied,
			func() bool { return n.ownDone[p.varID] > p.wseq },
			func() string {
				return fmt.Sprintf("cachepart: node %d async write #%d to %s", n.id, p.wseq, n.ix.Name(p.varID))
			})
	}
	for n.ownDone[p.varID] <= p.wseq {
		n.applied.Wait()
	}
	return nil
}

// PutAsync performs w_i(x)v without waiting for the sequencer round
// trip; Wait blocks until the update is applied locally. Outstanding
// writes reach x's sequencer in issue order only on FIFO channels, so
// on a NonFIFO network PutAsync degrades to the synchronous Put.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi, own, err := n.beginWrite(x)
	if err != nil {
		return nil, err
	}
	wseq := n.issueLocked(xi, own, v)
	n.mu.Unlock()
	return &pending{n: n, varID: xi, wseq: wseq}, nil
}

// Get performs r_i(x) wait-free on the local replica, appending the
// value to dst[:0].
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	return dst, nil
}

// handle dispatches sequencing requests and replica updates.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindRequest, KindForward:
		n.sequence(msg)
	case KindUpdate:
		n.applyUpdate(msg)
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		if mcs.IsEpochKind(msg.Kind) {
			n.rcf.Handle(msg)
			return
		}
		n.cfg.Faultf(n.id, "cachepart: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// sequence routes one write request (or forward) for the message's
// variable: multicast it under this node's sequencer role, park it
// across an in-progress handoff, or forward it toward the current
// owner. Malformed requests are reported through Config.Faultf and
// dropped (a panic on a reliable network, a survivable fault under
// injection).
func (n *Node) sequence(msg netsim.Message) {
	d := mcs.DecOf(msg.Payload)
	writer := msg.From
	if msg.Kind == KindForward {
		writer = int(d.U32())
	}
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed request from %d: %v", n.id, msg.From, err)
		mcs.RecycleFrame(msg)
		return
	}
	n.mu.Lock()
	if xi < 0 || xi >= n.ix.NumVars() || writer < 0 || writer >= n.cfg.Net.NumNodes() {
		n.mu.Unlock()
		n.cfg.Faultf(n.id, "cachepart: node %d: request from %d names unknown VarID %d / writer %d",
			n.id, msg.From, xi, writer)
		mcs.RecycleFrame(msg)
		return
	}
	switch {
	case n.ix.Owner(xi) == n.id && !n.fence.FencedLocked(xi):
		n.sequenceLocked(writer, wseq, xi, v)
	case n.ix.Owner(xi) == n.id || n.pendingOwnerLocked(xi):
		// Park across the transition window: either this sequencer
		// already fenced the variable (multicasting now would put the
		// update behind its own fence frame, breaking the drain
		// guarantee) or ownership is arriving and the writer flipped
		// first. Re-sequenced, in arrival order, when the attempt
		// resolves.
		n.heldReqs = append(n.heldReqs, heldReq{writer: writer, wseq: wseq, xi: xi, v: append(mcs.GetPayload(), v...)})
	default:
		// A straggler routed under a stale epoch: pass it toward the
		// variable's current owner, carrying the original writer.
		n.forwardLocked(writer, wseq, xi, v)
	}
	n.mu.Unlock()
	mcs.PutPayload(msg.Payload)
}

// sequenceLocked (sequencer role) assigns the per-variable order and
// multicasts to C(x). Called with mu held; the multicast goes out
// under the lock, so every update precedes any fence frame this node
// later sends on the same channels.
func (n *Node) sequenceLocked(writer, wseq, xi int, v []byte) {
	seq := n.vseq[xi]
	n.vseq[xi]++
	// The multicast payload is shared across C(x): a refcounted pooled
	// frame that the last receiver recycles.
	clique := n.ix.Clique(xi)
	buf, refs := mcs.GetSharedPayload(len(clique))
	var enc mcs.Enc
	enc.SetBuf(buf)
	enc.U32(uint32(seq)).U32(uint32(writer)).U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	for _, p := range clique {
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: p, Kind: KindUpdate,
			Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
			Vars: n.ix.MsgVars(xi), Epoch: n.ix.Epoch(), SharedPayload: true, SharedRefs: refs,
		})
	}
}

// forwardLocked re-routes one request toward x's current owner with
// the original writer's identity attached. Called with mu held.
func (n *Node) forwardLocked(writer, wseq, xi int, v []byte) {
	own := n.ix.Owner(xi)
	if own < 0 || own == n.id {
		n.cfg.Faultf(n.id, "cachepart: node %d: cannot forward request for %s (owner %d)", n.id, n.ix.Name(xi), own)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(writer)).U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: own, Kind: KindForward,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi), Epoch: n.ix.Epoch(),
	})
}

// pendingOwnerLocked reports whether the in-progress reconfiguration
// attempt (if any) makes this node the variable's sequencer. Called
// with mu held.
func (n *Node) pendingOwnerLocked(xi int) bool {
	next := n.rcf.PendingIndexLocked()
	return next != nil && next.Owner(xi) == n.id
}

// applyUpdate applies x's updates strictly in per-variable sequence
// order. An update stamped with an epoch ahead of this node's was
// multicast by a sequencer that flipped first; it parks until this
// node's own commit arrives and resets the variable's numbering.
func (n *Node) applyUpdate(msg netsim.Message) {
	d := mcs.DecOf(msg.Payload)
	seq := int(d.U32())
	writer := int(d.U32())
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed update: %v", n.id, err)
		mcs.RecycleFrame(msg)
		return
	}
	n.mu.Lock()
	if xi < 0 || xi >= n.ix.NumVars() {
		n.mu.Unlock()
		n.cfg.Faultf(n.id, "cachepart: node %d: update names unknown VarID %d", n.id, xi)
		mcs.RecycleFrame(msg)
		return
	}
	if msg.Epoch > n.ix.Epoch() {
		n.futures = append(n.futures, futureUpd{
			epoch: msg.Epoch, seq: seq, writer: writer, wseq: wseq, xi: xi,
			v: append(mcs.GetPayload(), v...),
		})
		n.mu.Unlock()
		mcs.RecycleFrame(msg)
		return
	}
	n.applyUpdateLocked(seq, writer, wseq, xi, v)
	n.mu.Unlock()
	mcs.RecycleFrame(msg) // last receiver of the shared multicast recycles it
}

// applyUpdateLocked runs one decoded update through the per-variable
// cursor logic. Called with mu held; v is copied before it is stored.
func (n *Node) applyUpdateLocked(seq, writer, wseq, xi int, v []byte) {
	// Updates below the variable's cursor are already reflected — an
	// injected duplicate, or a pre-crash straggler the snapshot merge
	// covered — and are dropped. During a rejoin window updates only
	// buffer: the cursors are being re-learned from peer snapshots.
	if !n.rejoining && seq < n.nextSeq[xi] {
		// The replica state needs nothing, but an own write riding the
		// frame must still be settled or its Put/Wait would block forever
		// (the write's effect reached us inside an adopted snapshot).
		n.settleOwnLocked(xi, writer, wseq)
		return
	}
	if n.buffered[xi] == nil {
		n.buffered[xi] = make(map[int]bufferedUpd)
	}
	// The value must outlive the delivered frame: copy it into a pooled
	// buffer, recycled when the update applies.
	n.buffered[xi][seq] = bufferedUpd{writer: writer, wseq: wseq, v: append(mcs.GetPayload(), v...)}
	if !n.rejoining {
		n.drainLocked(xi)
	}
}

// drainLocked applies x's buffered updates in sequence order from the
// cursor and wakes write waiters.
func (n *Node) drainLocked(xi int) {
	for {
		u, ok := n.buffered[xi][n.nextSeq[xi]]
		if !ok {
			break
		}
		delete(n.buffered[xi], n.nextSeq[xi])
		n.nextSeq[xi]++
		n.replicas.Set(xi, u.v)
		n.tags[xi] = mcs.WriteTag{Writer: u.writer, WSeq: u.wseq}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, u.writer, u.wseq, n.ix.Name(xi), u.v)
		}
		n.settleOwnLocked(xi, u.writer, u.wseq)
		mcs.PutPayload(u.v)
	}
	n.applied.Broadcast()
}

// settleOwnLocked advances x's own-write settle cursor when an own
// update's effect is in the replica state — applied by the drain,
// covered by an adopted snapshot prefix, or echoed by a fault-layer
// duplicate. Max semantics keep it idempotent, and pre-crash
// stragglers never regress it: CrashRestart settles everything issued
// before the crash.
func (n *Node) settleOwnLocked(xi, writer, wseq int) {
	if writer == n.id && wseq+1 > n.ownDone[xi] {
		n.ownDone[xi] = wseq + 1
		n.applied.Broadcast()
	}
}

// handleSnapReq answers a rejoining peer with, per mutually-replicated
// written variable: the apply cursor, the last applied write's
// (writer, wseq) tag and the value. Snapshot traffic stays inside the
// cliques both nodes belong to, preserving the protocol's efficiency.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch)
	countPos := enc.Len()
	enc.U32(0)
	var vars []string
	count, data := 0, 0
	n.mu.Lock()
	for _, xi := range n.ix.VarIDs(n.id) {
		t := n.tags[xi]
		if n.nextSeq[xi] == 0 || t.Writer < 0 || !n.ix.Holds(msg.From, xi) {
			continue
		}
		v := n.replicas.Get(xi)
		enc.U32(uint32(n.nextSeq[xi])).U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	n.mu.Unlock()
	enc.PatchU32(countPos, uint32(count))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one peer snapshot per variable: each
// variable's updates form one total order, so the highest apply cursor
// wins and adopting its value and cursor together keeps them
// consistent.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	count := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	for k := 0; k < count; k++ {
		cursor := int(d.U32())
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "cachepart: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() || w < 0 || w >= n.cfg.Net.NumNodes() {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "cachepart: node %d: snapshot entry from %d names unknown VarID %d / writer %d",
				n.id, msg.From, xi, w)
			return
		}
		if cursor <= n.nextSeq[xi] {
			continue
		}
		n.nextSeq[xi] = cursor
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecoverAt(n.id, w, s, n.ix.Name(xi), v, n.ix.Epoch())
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): buffered updates below the adopted cursors — pre-crash
// stragglers the snapshots already cover — are purged, each variable's
// drain resumes from its cursor, and variables no live peer knew a
// value for are recorded as ⊥ resets.
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	rec := n.cfg.Recorder
	for _, xi := range n.ix.VarIDs(n.id) {
		for seq, u := range n.buffered[xi] {
			if seq < n.nextSeq[xi] {
				delete(n.buffered[xi], seq)
				// The purged update's effect is inside the adopted
				// snapshot; an own write issued during the rejoin window
				// still completes.
				n.settleOwnLocked(xi, u.writer, u.wseq)
				mcs.PutPayload(u.v)
			}
		}
		if rec != nil && n.tags[xi].Writer < 0 {
			rec.RecordRecoverAt(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue, n.ix.Epoch())
		}
		n.drainLocked(xi)
	}
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: replicas revert to ⊥; tags, apply cursors,
// reorder buffers, parked requests and any in-progress reconfiguration
// attempt are forgotten, to be re-learned from peer snapshots during
// Recover (mcs.CrashRestarter). Durable state survives: the node's
// write counters, and its per-variable sequencer counters (a reused
// sequence number would fork a variable's total order). Writes still
// blocked from before the crash complete: their requests died with the
// node.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
		n.nextSeq[xi] = 0
		n.purgeBufferedLocked(xi)
		n.ownDone[xi] = n.wseq
	}
	for _, h := range n.heldReqs {
		mcs.PutPayload(h.v)
	}
	n.heldReqs = nil
	for _, f := range n.futures {
		mcs.PutPayload(f.v)
	}
	n.futures = nil
	n.rejoining = true
	n.rcv.Cancel()
	n.rcf.CancelLocked()
	n.fence.LiftLocked()
	n.applied.Broadcast()
	n.mu.Unlock()
}

// Recover starts the rejoin handshake with every variable-sharing
// neighbor under the current epoch's index (mcs.CrashRestarter).
func (n *Node) Recover() {
	n.mu.Lock()
	peers := n.ix.Neighbors(n.id)
	n.mu.Unlock()
	n.rcv.Begin(peers)
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

// ReconfigEngine exposes the node's epoch reconfiguration engine to the
// cluster facade.
func (n *Node) ReconfigEngine() *mcs.Reconfig { return n.rcf }

// ReconfigFlushLocked implements mcs.ReconfigHooks. The protocol has no
// outbox — requests and multicasts are sent directly, with mu held, so
// the engine's fence frames (sent under the same lock) already travel
// behind every earlier frame.
func (n *Node) ReconfigFlushLocked() {}

// ReconfigFenceLocked fences writes to the variables whose assignment —
// clique or sequencer — changes (mcs.ReconfigHooks). The fence also
// stops this node's own sequencer role for those variables: requests
// arriving after it park instead of being multicast behind the fence
// frame (see sequence).
func (n *Node) ReconfigFenceLocked(next *sharegraph.Index) {
	n.fence.ArmLocked(&n.mu, n.id, n.ix, next, false)
}

// ReconfigTransferVarsLocked lists the variables this node gains as a
// replica in the next epoch (mcs.ReconfigHooks). A node that keeps a
// variable across the flip needs no transfer: the fence barrier left
// it with the complete old-epoch stream applied, so every surviving
// member agrees on the value. The sequencer role itself carries no
// state beyond the counter, which restarts at zero cluster-wide.
func (n *Node) ReconfigTransferVarsLocked(next *sharegraph.Index) []int {
	var gained []int
	for _, xi := range next.VarIDs(n.id) {
		if !n.ix.Holds(n.id, xi) {
			gained = append(gained, xi)
		}
	}
	return gained
}

// ReconfigEncodeLocked answers a gaining node with the fence-settled
// tagged value of each requested variable (mcs.ReconfigHooks). No
// apply cursor travels: a gained variable's assignment changed by
// definition, so its stream numbering restarts at zero on every clique
// member at the flip.
func (n *Node) ReconfigEncodeLocked(enc *mcs.Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string) {
	countPos := enc.Len()
	enc.U32(0)
	count := 0
	for _, xi := range varIDs {
		if xi < 0 || xi >= len(n.tags) || n.tags[xi].Writer < 0 {
			continue
		}
		t := n.tags[xi]
		v := n.replicas.Get(xi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	enc.PatchU32(countPos, uint32(count))
	return data, vars
}

// ReconfigMergeLocked adopts one donor's transfer entries: values pass
// the usual staleness rule and are recorded as migration events — the
// cache monitor re-anchors the variable's position from them
// (mcs.ReconfigHooks). Merged state is harmless if the attempt aborts:
// it carries valid tagged writes for variables the node simply won't
// serve.
func (n *Node) ReconfigMergeLocked(d *mcs.Dec, from int, next *sharegraph.Index) error {
	count := int(d.U32())
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			return err
		}
		if xi < 0 || xi >= n.ix.NumVars() || w < 0 || w >= n.cfg.Net.NumNodes() {
			return fmt.Errorf("cachepart: transfer entry names unknown VarID %d / writer %d", xi, w)
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordMigrateAt(n.id, w, s, n.ix.Name(xi), v, next.Epoch())
		}
	}
	return d.Err()
}

// ReconfigFlipLocked installs the next epoch (mcs.ReconfigHooks): shed
// replicas revert to ⊥, every assignment-changed variable's stream
// numbering restarts at zero (sequencer counter, apply cursor and
// reorder buffer alike — readiness certified that every live member
// drained the old stream in full), gained variables no donor had a
// value for are recorded as ⊥ resets, own writes on shed variables are
// settled (their updates now apply at a clique this node left), and
// the index swaps. Then the parked traffic re-enters: requests held
// across the window are re-sequenced by this node or forwarded to the
// variable's new owner in arrival order, and updates that arrived
// under the new epoch before this commit drain through the normal
// cursor logic.
func (n *Node) ReconfigFlipLocked(next *sharegraph.Index) {
	rec := n.cfg.Recorder
	for _, xi := range n.ix.VarIDs(n.id) {
		if next.Holds(n.id, xi) {
			continue
		}
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
		if n.ownDone[xi] < n.wseq {
			n.ownDone[xi] = n.wseq
		}
	}
	for xi := 0; xi < n.ix.NumVars(); xi++ {
		if sharegraph.SameAssignment(n.ix, next, xi) {
			continue
		}
		n.vseq[xi] = 0
		n.nextSeq[xi] = 0
		n.purgeBufferedLocked(xi)
	}
	if rec != nil && !n.rejoining {
		for _, xi := range next.VarIDs(n.id) {
			if !n.ix.Holds(n.id, xi) && n.tags[xi].Writer < 0 {
				rec.RecordMigrateAt(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue, next.Epoch())
			}
		}
	}
	n.ix = next
	n.fence.LiftLocked()
	n.applied.Broadcast()
	held := n.heldReqs
	n.heldReqs = nil
	for _, h := range held {
		if n.ix.Owner(h.xi) == n.id {
			n.sequenceLocked(h.writer, h.wseq, h.xi, h.v)
		} else {
			n.forwardLocked(h.writer, h.wseq, h.xi, h.v)
		}
		mcs.PutPayload(h.v)
	}
	if len(n.futures) > 0 {
		futures := n.futures
		n.futures = nil
		for _, f := range futures {
			if f.epoch > n.ix.Epoch() {
				n.futures = append(n.futures, f)
				continue
			}
			n.applyUpdateLocked(f.seq, f.writer, f.wseq, f.xi, f.v)
			mcs.PutPayload(f.v)
		}
	}
}

// purgeBufferedLocked discards every reorder-buffered update for xi,
// recycling the payload copies. Deletion order is invisible: nothing
// leaves the node and the payload pool is content-agnostic.
func (n *Node) purgeBufferedLocked(xi int) {
	for seq, u := range n.buffered[xi] {
		delete(n.buffered[xi], seq)
		mcs.PutPayload(u.v)
	}
}

// ReconfigAbortLocked abandons the attempt (mcs.ReconfigHooks): the
// fence lifts, the current epoch stays in force, and the requests
// parked behind the fence are sequenced under it after all — this node
// is still the owner of every variable it fenced as one. Parked
// future-epoch updates stay parked: their epoch was decided commit by
// definition, so this node's own commit is still in flight.
func (n *Node) ReconfigAbortLocked() {
	n.fence.LiftLocked()
	held := n.heldReqs
	n.heldReqs = nil
	for _, h := range held {
		if n.ix.Owner(h.xi) == n.id {
			n.sequenceLocked(h.writer, h.wseq, h.xi, h.v)
		} else {
			n.forwardLocked(h.writer, h.wseq, h.xi, h.v)
		}
		mcs.PutPayload(h.v)
	}
}

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
	_ mcs.ReconfigHooks  = (*Node)(nil)
)
