// Package cachepart implements cache consistency (Goodman) — per-
// variable sequential consistency — under partial replication, as an
// exploration of the paper's §7 open question: whether criteria other
// than (and in places stronger than) PRAM admit efficient partial-
// replication implementations.
//
// Cache consistency is incomparable with PRAM: it totally orders all
// operations on each single variable (stronger than PRAM's per-sender
// guarantee on that axis) but imposes nothing across variables (weaker
// than PRAM's program order). Crucially, its synchronization is
// per-variable, so it *is* efficient in the paper's sense: every
// message about x stays inside C(x).
//
// Protocol: the lowest-numbered member of C(x) acts as x's sequencer.
// A write on x travels to the sequencer, receives a per-variable
// sequence number and is multicast to C(x); replicas apply each
// variable's updates in sequence order; the writer blocks until its
// own update is applied locally (per-variable read-your-writes, which
// makes each variable's projection sequentially consistent with local
// wait-free reads). Reads are local.
package cachepart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
)

// Message kinds.
const (
	KindRequest = "cache.request" // writer → variable sequencer
	KindUpdate  = "cache.update"  // sequencer → C(x)
)

// bufferedUpd is an out-of-order per-variable update.
type bufferedUpd struct {
	writer int
	wseq   int
	v      int64
}

// Node is one cache-consistent MCS process.
type Node struct {
	cfg mcs.Config
	id  int

	mu       sync.Mutex
	replicas map[string]int64
	wseq     int
	nextSeq  map[string]int // next per-variable sequence to apply
	buffered map[string]map[int]bufferedUpd
	ownDone  map[string]int // per variable: own writes applied locally
	ownSent  map[string]int // per variable: own writes issued
	applied  *sync.Cond

	seqMu sync.Mutex
	vseq  map[string]int // sequencer role: next sequence per owned variable
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			replicas: make(map[string]int64),
			nextSeq:  make(map[string]int),
			buffered: make(map[string]map[int]bufferedUpd),
			ownDone:  make(map[string]int),
			ownSent:  make(map[string]int),
			vseq:     make(map[string]int),
		}
		node.applied = sync.NewCond(&node.mu)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns x's sequencer: the lowest member of C(x).
func (n *Node) primary(x string) (int, error) {
	cx := n.cfg.Placement.Clique(x)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, x)
	}
	return cx[0], nil
}

// Write performs w_i(x)v: route through x's sequencer, block until the
// update is applied locally.
func (n *Node) Write(x string, v int64) error {
	if !n.cfg.Placement.Holds(n.id, x) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(x)
	if err != nil {
		return err
	}
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	myTurn := n.ownSent[x]
	n.ownSent[x]++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, x, v)
	}
	n.mu.Unlock()

	var enc mcs.Enc
	enc.U32(uint32(n.id)).U32(uint32(wseq)).Str(x).I64(v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindRequest,
		Payload: payload, CtrlBytes: len(payload) - 8, DataBytes: 8,
		Vars: []string{x},
	})

	// Block until this write (the myTurn-th own write on x) is applied
	// locally, so the process's operations on x serialize in program
	// order.
	n.mu.Lock()
	for n.ownDone[x] <= myTurn {
		n.applied.Wait()
	}
	n.mu.Unlock()
	return nil
}

// Read performs r_i(x) wait-free on the local replica.
func (n *Node) Read(x string) (int64, error) {
	if !n.cfg.Placement.Holds(n.id, x) {
		return 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	v, ok := n.replicas[x]
	if !ok {
		v = model.Bottom
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, x, v)
	}
	n.mu.Unlock()
	return v, nil
}

// handle dispatches sequencing requests and replica updates.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindRequest:
		n.sequence(msg)
	case KindUpdate:
		n.applyUpdate(msg)
	default:
		panic(fmt.Sprintf("cachepart: node %d: unknown message kind %q", n.id, msg.Kind))
	}
}

// sequence (sequencer role for the message's variable) assigns the
// per-variable order and multicasts to C(x).
func (n *Node) sequence(msg netsim.Message) {
	d := mcs.NewDec(msg.Payload)
	writer := int(d.U32())
	wseq := int(d.U32())
	x := d.Str()
	v := d.I64()
	if err := d.Err(); err != nil {
		panic(fmt.Sprintf("cachepart: node %d: malformed request from %d: %v", n.id, msg.From, err))
	}
	if prim, _ := n.primary(x); prim != n.id {
		panic(fmt.Sprintf("cachepart: request for %s routed to non-sequencer node %d", x, n.id))
	}
	n.seqMu.Lock()
	seq := n.vseq[x]
	n.vseq[x]++
	n.seqMu.Unlock()

	var enc mcs.Enc
	enc.U32(uint32(seq)).U32(uint32(writer)).U32(uint32(wseq)).Str(x).I64(v)
	payload := enc.Bytes()
	for _, p := range n.cfg.Placement.Clique(x) {
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: p, Kind: KindUpdate,
			Payload: payload, CtrlBytes: len(payload) - 8, DataBytes: 8,
			Vars: []string{x},
		})
	}
}

// applyUpdate applies x's updates strictly in per-variable sequence
// order.
func (n *Node) applyUpdate(msg netsim.Message) {
	d := mcs.NewDec(msg.Payload)
	seq := int(d.U32())
	writer := int(d.U32())
	wseq := int(d.U32())
	x := d.Str()
	v := d.I64()
	if err := d.Err(); err != nil {
		panic(fmt.Sprintf("cachepart: node %d: malformed update: %v", n.id, err))
	}
	n.mu.Lock()
	if n.buffered[x] == nil {
		n.buffered[x] = make(map[int]bufferedUpd)
	}
	n.buffered[x][seq] = bufferedUpd{writer: writer, wseq: wseq, v: v}
	for {
		u, ok := n.buffered[x][n.nextSeq[x]]
		if !ok {
			break
		}
		delete(n.buffered[x], n.nextSeq[x])
		n.nextSeq[x]++
		n.replicas[x] = u.v
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, u.writer, u.wseq, x, u.v)
		}
		if u.writer == n.id {
			n.ownDone[x]++
		}
	}
	n.applied.Broadcast()
	n.mu.Unlock()
}

var _ mcs.Node = (*Node)(nil)
