// Package cachepart implements cache consistency (Goodman) — per-
// variable sequential consistency — under partial replication, as an
// exploration of the paper's §7 open question: whether criteria other
// than (and in places stronger than) PRAM admit efficient partial-
// replication implementations.
//
// Cache consistency is incomparable with PRAM: it totally orders all
// operations on each single variable (stronger than PRAM's per-sender
// guarantee on that axis) but imposes nothing across variables (weaker
// than PRAM's program order). Crucially, its synchronization is
// per-variable, so it *is* efficient in the paper's sense: every
// message about x stays inside C(x).
//
// Protocol: the lowest-numbered member of C(x) acts as x's sequencer.
// A write on x travels to the sequencer, receives a per-variable
// sequence number and is multicast to C(x); replicas apply each
// variable's updates in sequence order; the writer blocks until its
// own update is applied locally (per-variable read-your-writes, which
// makes each variable's projection sequentially consistent with local
// wait-free reads). Reads are local.
//
// Writes block on a round trip, so updates are not coalesced; all
// per-variable state lives in flat arrays indexed by interned VarIDs
// and the single-destination request payload is recycled by the
// sequencer.
package cachepart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A request is (U32 wseq, VarVal varID/value) with the
// writer identified by the message source; an update is
// (U32 seq, U32 writer, U32 wseq, VarVal varID/value).
const (
	KindRequest = "cache.request" // writer → variable sequencer
	KindUpdate  = "cache.update"  // sequencer → C(x)
)

// bufferedUpd is an out-of-order per-variable update; v is a pooled
// copy of the value bytes, recycled at apply.
type bufferedUpd struct {
	writer int
	wseq   int
	v      []byte
}

// Node is one cache-consistent MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu       sync.Mutex
	replicas mcs.Replicas // by VarID
	wseq     int
	nextSeq  []int                 // next per-variable sequence to apply, by VarID
	buffered []map[int]bufferedUpd // by VarID; maps lazily allocated
	ownDone  []int                 // per VarID: own writes applied locally
	ownSent  []int                 // per VarID: own writes issued
	applied  *sync.Cond

	seqMu sync.Mutex
	vseq  []int // sequencer role: next sequence per owned VarID
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			replicas: mcs.NewReplicas(ix.NumVars()),
			nextSeq:  make([]int, ix.NumVars()),
			buffered: make([]map[int]bufferedUpd, ix.NumVars()),
			ownDone:  make([]int, ix.NumVars()),
			ownSent:  make([]int, ix.NumVars()),
			vseq:     make([]int, ix.NumVars()),
		}
		node.applied = sync.NewCond(&node.mu)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns x's sequencer: the lowest member of C(x).
func (n *Node) primary(xi int) (int, error) {
	cx := n.ix.Clique(xi)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return cx[0], nil
}

// issue records and sends one write request to x's sequencer,
// returning this node's per-variable turn number.
func (n *Node) issue(xi, prim int, v []byte) (myTurn int) {
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	myTurn = n.ownSent[xi]
	n.ownSent[xi]++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	n.mu.Unlock()

	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindRequest,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi),
	})
	return myTurn
}

// Put performs w_i(x)v: route through x's sequencer, block until the
// update is applied locally.
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return err
	}
	myTurn := n.issue(xi, prim, v)
	// Block until this write (the myTurn-th own write on x) is applied
	// locally, so the process's operations on x serialize in program
	// order.
	n.mu.Lock()
	for n.ownDone[xi] <= myTurn {
		n.applied.Wait()
	}
	n.mu.Unlock()
	return nil
}

// pending is an outstanding asynchronous write on one variable: it
// completes when the node's myTurn-th own write on the variable has
// been applied locally. Requests reach x's sequencer in issue order
// (per-pair FIFO), so outstanding writes on one variable complete in
// issue order.
type pending struct {
	n      *Node
	varID  int
	myTurn int
}

// Wait blocks until the write is applied locally.
func (p *pending) Wait() error {
	p.n.mu.Lock()
	for p.n.ownDone[p.varID] <= p.myTurn {
		p.n.applied.Wait()
	}
	p.n.mu.Unlock()
	return nil
}

// PutAsync performs w_i(x)v without waiting for the sequencer round
// trip; Wait blocks until the update is applied locally. Outstanding
// writes reach x's sequencer in issue order only on FIFO channels, so
// on a NonFIFO network PutAsync degrades to the synchronous Put.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	return &pending{n: n, varID: xi, myTurn: n.issue(xi, prim, v)}, nil
}

// Get performs r_i(x) wait-free on the local replica, appending the
// value to dst[:0].
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	return dst, nil
}

// handle dispatches sequencing requests and replica updates.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindRequest:
		n.sequence(msg)
	case KindUpdate:
		n.applyUpdate(msg)
	default:
		n.cfg.Faultf(n.id, "cachepart: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// sequence (sequencer role for the message's variable) assigns the
// per-variable order and multicasts to C(x). Malformed or misrouted
// requests are reported through Config.Faultf and dropped (a panic on
// a reliable network, a survivable fault under injection).
func (n *Node) sequence(msg netsim.Message) {
	d := mcs.DecOf(msg.Payload)
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed request from %d: %v", n.id, msg.From, err)
		mcs.RecycleFrame(msg)
		return
	}
	if xi < 0 || xi >= n.ix.NumVars() {
		n.cfg.Faultf(n.id, "cachepart: node %d: request from %d names unknown VarID %d", n.id, msg.From, xi)
		mcs.RecycleFrame(msg)
		return
	}
	if prim, _ := n.primary(xi); prim != n.id {
		n.cfg.Faultf(n.id, "cachepart: request for %s routed to non-sequencer node %d", n.ix.Name(xi), n.id)
		mcs.RecycleFrame(msg)
		return
	}
	n.seqMu.Lock()
	seq := n.vseq[xi]
	n.vseq[xi]++
	n.seqMu.Unlock()

	// The multicast payload is shared across C(x): a refcounted pooled
	// frame that the last receiver recycles. v still aliases the
	// request payload, which is recycled only after the re-encode.
	clique := n.ix.Clique(xi)
	buf, refs := mcs.GetSharedPayload(len(clique))
	var enc mcs.Enc
	enc.SetBuf(buf)
	enc.U32(uint32(seq)).U32(uint32(msg.From)).U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	mcs.PutPayload(msg.Payload) // single-destination request: sequencer owns it
	for _, p := range clique {
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: p, Kind: KindUpdate,
			Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
			Vars: n.ix.MsgVars(xi), SharedPayload: true, SharedRefs: refs,
		})
	}
}

// applyUpdate applies x's updates strictly in per-variable sequence
// order.
func (n *Node) applyUpdate(msg netsim.Message) {
	d := mcs.DecOf(msg.Payload)
	seq := int(d.U32())
	writer := int(d.U32())
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed update: %v", n.id, err)
		mcs.RecycleFrame(msg)
		return
	}
	if xi < 0 || xi >= n.ix.NumVars() {
		n.cfg.Faultf(n.id, "cachepart: node %d: update names unknown VarID %d", n.id, xi)
		mcs.RecycleFrame(msg)
		return
	}
	n.mu.Lock()
	if n.buffered[xi] == nil {
		n.buffered[xi] = make(map[int]bufferedUpd)
	}
	// The value must outlive the shared multicast frame: copy it into a
	// pooled buffer, recycled when the update applies.
	n.buffered[xi][seq] = bufferedUpd{writer: writer, wseq: wseq, v: append(mcs.GetPayload(), v...)}
	for {
		u, ok := n.buffered[xi][n.nextSeq[xi]]
		if !ok {
			break
		}
		delete(n.buffered[xi], n.nextSeq[xi])
		n.nextSeq[xi]++
		n.replicas.Set(xi, u.v)
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, u.writer, u.wseq, n.ix.Name(xi), u.v)
		}
		if u.writer == n.id {
			n.ownDone[xi]++
		}
		mcs.PutPayload(u.v)
	}
	n.applied.Broadcast()
	n.mu.Unlock()
	mcs.RecycleFrame(msg) // last receiver of the shared multicast recycles it
}

var _ mcs.Node = (*Node)(nil)
