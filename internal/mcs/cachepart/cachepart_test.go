package cachepart

import (
	"sync"
	"testing"
	"time"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

func harness(t *testing.T) ([]*Node, *netsim.Network, *mcs.Recorder, *metrics.Collector) {
	t.Helper()
	pl := sharegraph.NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y")
	col := metrics.NewCollector()
	net := netsim.NewNetwork(3, netsim.Options{
		FIFO: true, MaxLatency: 100 * time.Microsecond, Seed: 2, Metrics: col,
	})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(3)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Metrics: col, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec, col
}

func TestReadYourWritesPerVariable(t *testing.T) {
	nodes, _, _, _ := harness(t)
	for k := int64(1); k <= 10; k++ {
		if err := mcs.WriteInt(nodes[2], "x", k); err != nil {
			t.Fatal(err)
		}
		if v, _ := mcs.ReadInt(nodes[2], "x"); v != k {
			t.Fatalf("per-variable read-your-writes violated: wrote %d, read %d", k, v)
		}
	}
}

func TestEfficiencyInfoStaysInClique(t *testing.T) {
	nodes, net, _, col := harness(t)
	mcs.WriteInt(nodes[0], "x", 1)
	mcs.WriteInt(nodes[2], "x", 2)
	net.Quiesce()
	if col.Touched(1, "x") {
		t.Error("node 1 ∉ C(x) handled x information — cachepart must be efficient")
	}
}

func TestPerVariableTotalOrderAgreement(t *testing.T) {
	nodes, net, rec, _ := harness(t)
	var wg sync.WaitGroup
	for _, i := range []int{0, 2} {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if err := mcs.WriteInt(nodes[i], "x", int64(i*1000+k+1)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	net.Quiesce()
	v0, _ := mcs.ReadInt(nodes[0], "x")
	v2, _ := mcs.ReadInt(nodes[2], "x")
	if v0 != v2 {
		t.Errorf("replicas diverge: %d vs %d", v0, v2)
	}
	if err := check.WitnessCache(3, rec.Logs()); err != nil {
		t.Fatalf("cache witness: %v", err)
	}
}

func TestCrossVariableReorderingAllowed(t *testing.T) {
	// Cache consistency does NOT order operations across variables: a
	// node may see y's new value while x is still in flight. This test
	// just documents that nothing blocks across variables — both
	// variables converge independently.
	nodes, net, _, _ := harness(t)
	mcs.WriteInt(nodes[0], "x", 1)
	mcs.WriteInt(nodes[0], "y", 2)
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[2], "x"); v != 1 {
		t.Error("x lost")
	}
	if v, _ := mcs.ReadInt(nodes[2], "y"); v != 2 {
		t.Error("y lost")
	}
}

func TestSequencerIsLowestCliqueMember(t *testing.T) {
	nodes, net, _, col := harness(t)
	// y's sequencer is node 0: a write by node 1 produces request 1→0
	// then updates 0→{0,1,2}.
	if err := mcs.WriteInt(nodes[1], "y", 5); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	s := col.Snapshot()
	if s.PerKind[KindRequest] != 1 {
		t.Errorf("requests = %d", s.PerKind[KindRequest])
	}
	if s.PerKind[KindUpdate] != 3 {
		t.Errorf("updates = %d, want 3 (all of C(y))", s.PerKind[KindUpdate])
	}
}

func TestAccessControl(t *testing.T) {
	nodes, _, _, _ := harness(t)
	if err := mcs.WriteInt(nodes[1], "x", 1); err == nil {
		t.Error("write outside X_1 must fail")
	}
	if _, err := mcs.ReadInt(nodes[1], "x"); err == nil {
		t.Error("read outside X_1 must fail")
	}
}

func TestUnknownKindPanics(t *testing.T) {
	nodes, _, _, _ := harness(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown kind must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: "bogus"})
}

func TestMalformedPayloadPanics(t *testing.T) {
	nodes, _, _, _ := harness(t)
	defer func() {
		if recover() == nil {
			t.Error("malformed request must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: KindRequest, Payload: []byte{5}})
}

func TestRequestToWrongSequencerForwards(t *testing.T) {
	// Under migratable ownership a request routed to a non-sequencer is
	// no longer a protocol violation: it is a straggler from an older
	// epoch, and the receiver forwards it toward the current owner with
	// the original writer attached. The write must still land, exactly
	// once, in x's total order.
	nodes, net, rec, _ := harness(t)
	// A well-formed (wseq, varID, val) request for x (VarID 0), written
	// by node 2 but delivered to node 2 itself instead of x's sequencer
	// (node 0). RecordWrite keeps the recorder's write sequence
	// consistent with the wseq the frame carries.
	rec.RecordWrite(2, "x", nil)
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(0).U32(0).I64(1)
	nodes[2].handle(netsim.Message{From: 2, To: 2, Kind: KindRequest, Payload: enc.Bytes()})
	net.Quiesce()
	if v, err := mcs.ReadInt(nodes[0], "x"); err != nil || v != 1 {
		t.Fatalf("forwarded write did not land at the sequencer: x = %d, err = %v", v, err)
	}
	if v, err := mcs.ReadInt(nodes[2], "x"); err != nil || v != 1 {
		t.Fatalf("forwarded write did not multicast back to the writer: x = %d, err = %v", v, err)
	}
}
