// Package seqcons implements sequential consistency (Lamport) with a
// sequencer: the "stronger than causal" end of the paper's criterion
// spectrum (§1), against which the latency and control-information
// costs of the weaker criteria are compared.
//
// Node 0 acts as the sequencer. A write is sent to the sequencer,
// which assigns a global sequence number and broadcasts the update to
// every node; nodes apply updates strictly in global-sequence order,
// and the writer blocks until its own update has been applied locally.
// Reads are local ("fast reads, slow writes"). The resulting executions
// admit a single serialization — the global sequence order with each
// read inserted after the last write applied at its node — that
// respects every process's program order.
//
// Because every write blocks on a round trip, updates are not coalesced
// (holding the request back would only add latency); the protocol still
// rides the interned-VarID wire format and array replicas, and the
// single-destination request payload is recycled by the sequencer.
package seqcons

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A request is (U32 wseq, VarVal varID/value) with the
// writer identified by the message source; an update is
// (U32 gseq, U32 writer, U32 wseq, VarVal varID/value).
const (
	KindRequest = "seq.request" // writer → sequencer
	KindUpdate  = "seq.update"  // sequencer → everyone
)

// Node is one sequentially consistent MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	// ix0 is the epoch-0 index, used for universe lookups (Name,
	// MsgVars, NumVars) that are stable across epochs — the variable
	// universe never changes — so the lock-free sequencer path needs no
	// synchronization with epoch flips.
	ix0 *sharegraph.Index

	mu sync.Mutex
	// ix is the current epoch's index (access scoping); swapped under
	// mu at an epoch flip.
	ix         *sharegraph.Index
	replicas   mcs.Replicas   // by VarID
	tags       []mcs.WriteTag // by VarID: last applied write
	wseq       int
	nextGSeq   int                 // next global sequence number to apply
	buffered   map[int]bufferedUpd // gseq → update
	ownApplied int                 // how many of this node's writes are applied locally
	applied    *sync.Cond          // signalled on every apply

	rcv       *mcs.Recovery
	rejoining bool

	// Epoch reconfiguration: replica state is global, so a flip only
	// swaps the access-scoping index — no fence, no transfer.
	rcf *mcs.Reconfig

	// Sequencer state (node 0 only). The counter is durable across the
	// sequencer's own crashes: it cannot be reconstructed from replicas
	// (in-flight broadcasts may outrun every peer's apply cursor), and a
	// reused global sequence number would fork the total order.
	seqMu sync.Mutex
	gseq  int
}

// bufferedUpd is one globally sequenced update awaiting in-order
// apply; v is a pooled copy of the value bytes, recycled at apply.
type bufferedUpd struct {
	writer int
	wseq   int
	varID  int
	v      []byte
}

// New instantiates the nodes; node 0 doubles as the sequencer.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix0:      ix,
			ix:       ix,
			replicas: mcs.NewReplicas(ix.NumVars()),
			tags:     mcs.NewWriteTags(ix.NumVars()),
			buffered: make(map[int]bufferedUpd),
		}
		node.applied = sync.NewCond(&node.mu)
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		node.rcf = mcs.NewReconfig(cfg, i, &node.mu, node, ix)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// resolve interns x and checks the current epoch's access scope under
// the node lock.
func (n *Node) resolve(x string) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return -1, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	return xi, nil
}

// issue records and sends one write request to the sequencer,
// returning its per-process sequence number.
func (n *Node) issue(xi int, v []byte) (wseq int) {
	n.mu.Lock()
	wseq = n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix0.Name(xi), v)
	}
	n.mu.Unlock()

	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        0,
		Kind:      KindRequest,
		Payload:   payload,
		CtrlBytes: len(payload) - len(v),
		DataBytes: len(v),
		Vars:      n.ix0.MsgVars(xi),
	})
	return wseq
}

// Put performs w_i(x)v: route through the sequencer and block until
// the update is applied locally, so a process's writes take effect in
// program order before its subsequent reads.
func (n *Node) Put(x string, v []byte) error {
	xi, err := n.resolve(x)
	if err != nil {
		return err
	}
	wseq := n.issue(xi, v)
	// Block until our own write has been applied locally.
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.applied,
			func() bool { return n.appliedOwnLocked(wseq) },
			func() string { return fmt.Sprintf("seqcons: node %d write #%d to %s", n.id, wseq, x) })
	}
	for !n.appliedOwnLocked(wseq) {
		n.applied.Wait()
	}
	return nil
}

// pending is an outstanding asynchronous write: it completes when the
// node's wseq-th own write has been applied locally — exactly where
// the synchronous Put would have returned. The sequencer receives
// requests from this node in issue order (per-pair FIFO), so multiple
// outstanding writes complete in issue order.
type pending struct {
	n    *Node
	wseq int
}

// Wait blocks until the write is applied locally.
func (p *pending) Wait() error {
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.applied,
			func() bool { return n.appliedOwnLocked(p.wseq) },
			func() string { return fmt.Sprintf("seqcons: node %d async write #%d", n.id, p.wseq) })
	}
	for !n.appliedOwnLocked(p.wseq) {
		n.applied.Wait()
	}
	return nil
}

// PutAsync performs w_i(x)v without waiting for the sequencer round
// trip. The update is on the wire when PutAsync returns; Wait blocks
// until it is applied locally. A read issued before Wait may miss the
// write — the caller trades read-your-writes for pipelining. Multiple
// outstanding writes reach the sequencer in issue order only on FIFO
// channels, so on a NonFIFO network PutAsync degrades to the
// synchronous Put (one outstanding request, the v1 discipline).
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi, err := n.resolve(x)
	if err != nil {
		return nil, err
	}
	return &pending{n: n, wseq: n.issue(xi, v)}, nil
}

// appliedOwnLocked reports whether this node's write #wseq has been
// applied locally (the apply loop counts own writes).
func (n *Node) appliedOwnLocked(wseq int) bool {
	return n.ownApplied > wseq
}

// Get performs r_i(x) on the local replica, appending the value to
// dst[:0].
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	return dst, nil
}

// handle dispatches on message kind.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindRequest:
		n.sequence(msg)
	case KindUpdate:
		n.applyUpdate(msg)
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		if mcs.IsEpochKind(msg.Kind) {
			n.rcf.Handle(msg)
			return
		}
		n.cfg.Faultf(n.id, "seqcons: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// sequence (sequencer role) assigns the global order and broadcasts.
// Malformed or misrouted requests are reported through Config.Faultf
// and dropped (a panic on a reliable network, a survivable fault
// under injection).
func (n *Node) sequence(msg netsim.Message) {
	if n.id != 0 {
		n.cfg.Faultf(n.id, "seqcons: request routed to non-sequencer node %d", n.id)
		mcs.RecycleFrame(msg)
		return
	}
	d := mcs.DecOf(msg.Payload)
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "seqcons: malformed request from %d: %v", msg.From, err)
		mcs.RecycleFrame(msg)
		return
	}
	if xi < 0 || xi >= n.ix0.NumVars() {
		n.cfg.Faultf(n.id, "seqcons: request from %d names unknown VarID %d", msg.From, xi)
		mcs.RecycleFrame(msg)
		return
	}
	n.seqMu.Lock()
	g := n.gseq
	n.gseq++
	n.seqMu.Unlock()

	// The broadcast payload is shared across every Send: a refcounted
	// pooled frame that the last receiver recycles. v still aliases the
	// request payload, which is recycled only after the re-encode.
	numNodes := n.cfg.Net.NumNodes()
	buf, refs := mcs.GetSharedPayload(numNodes)
	var enc mcs.Enc
	enc.SetBuf(buf)
	enc.U32(uint32(g)).U32(uint32(msg.From)).U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	mcs.PutPayload(msg.Payload) // single-destination request: sequencer owns it
	for p := 0; p < numNodes; p++ {
		n.cfg.Net.Send(netsim.Message{
			From:          n.id,
			To:            p,
			Kind:          KindUpdate,
			Payload:       payload,
			CtrlBytes:     len(payload) - len(v),
			DataBytes:     len(v),
			Vars:          n.ix0.MsgVars(xi),
			SharedPayload: true,
			SharedRefs:    refs,
		})
	}
}

// applyUpdate applies updates strictly in global sequence order.
func (n *Node) applyUpdate(msg netsim.Message) {
	d := mcs.DecOf(msg.Payload)
	g := int(d.U32())
	writer := int(d.U32())
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "seqcons: node %d: malformed update: %v", n.id, err)
		mcs.RecycleFrame(msg)
		return
	}
	if xi < 0 || xi >= n.ix0.NumVars() {
		n.cfg.Faultf(n.id, "seqcons: node %d: update names unknown VarID %d", n.id, xi)
		mcs.RecycleFrame(msg)
		return
	}
	n.mu.Lock()
	if g < n.nextGSeq && !n.rejoining {
		// Behind the apply cursor: a fault-layer duplicate, or an update
		// whose effect an adopted snapshot already covers. The replica
		// state needs nothing, but an own write riding it must still be
		// settled or its Put/Wait would block forever.
		n.settleOwnLocked(writer, wseq)
		n.mu.Unlock()
		mcs.RecycleFrame(msg)
		return
	}
	// The value must outlive the shared broadcast frame: copy it into a
	// pooled buffer, recycled when the update applies. During a rejoin
	// window updates only buffer: the apply cursor is being re-learned
	// from peer snapshots, and the drain resumes from the adopted one.
	n.buffered[g] = bufferedUpd{writer: writer, wseq: wseq, varID: xi, v: append(mcs.GetPayload(), v...)}
	if !n.rejoining {
		n.drainLocked()
	}
	n.mu.Unlock()
	mcs.RecycleFrame(msg) // last receiver of the shared broadcast recycles it
}

// drainLocked applies buffered updates in global-sequence order from
// the cursor and wakes write waiters.
func (n *Node) drainLocked() {
	for {
		u, ok := n.buffered[n.nextGSeq]
		if !ok {
			break
		}
		delete(n.buffered, n.nextGSeq)
		n.nextGSeq++
		n.replicas.Set(u.varID, u.v)
		n.tags[u.varID] = mcs.WriteTag{Writer: u.writer, WSeq: u.wseq}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, u.writer, u.wseq, n.ix.Name(u.varID), u.v)
		}
		n.settleOwnLocked(u.writer, u.wseq)
		mcs.PutPayload(u.v)
	}
	n.applied.Broadcast()
}

// settleOwnLocked advances the own-write completion cursor when an own
// update's effect is in the replica state — applied by the drain,
// covered by an adopted snapshot prefix, or echoed by a fault-layer
// duplicate. Keyed to the write's per-process sequence (not a count of
// apply events), it is idempotent under duplicates and never regresses
// on a pre-crash straggler: writes blocked at the crash are settled by
// CrashRestart at a cursor at or above their wseq.
func (n *Node) settleOwnLocked(writer, wseq int) {
	if writer == n.id && wseq+1 > n.ownApplied {
		n.ownApplied = wseq + 1
		n.applied.Broadcast()
	}
}

// handleSnapReq answers a rejoining peer with the responder's apply
// cursor and the full tagged replica state: sequencer broadcasts reach
// every node, so any live peer's state is a prefix of the single global
// order and covers every variable.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "seqcons: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch)
	n.mu.Lock()
	enc.U32(uint32(n.nextGSeq))
	countPos := enc.Len()
	enc.U32(0)
	var vars []string
	count, data := 0, 0
	for xi := range n.tags {
		t := n.tags[xi]
		if t.Writer < 0 {
			continue
		}
		v := n.replicas.Get(xi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	n.mu.Unlock()
	enc.PatchU32(countPos, uint32(count))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp adopts a peer snapshot wholesale when it extends the
// longest prefix adopted so far: every snapshot is a prefix of the one
// global order, so the highest apply cursor wins and its per-variable
// state is at least as new, variable by variable, as any shorter one.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	respGSeq := int(d.U32())
	count := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "seqcons: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	adopt := respGSeq > n.nextGSeq
	if adopt {
		n.nextGSeq = respGSeq
	}
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "seqcons: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() || w < 0 || w >= n.cfg.Net.NumNodes() {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "seqcons: node %d: snapshot entry from %d names unknown VarID %d / writer %d",
				n.id, msg.From, xi, w)
			return
		}
		if !adopt {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecover(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): buffered updates below the adopted cursor — pre-crash
// stragglers the snapshot already covers — are purged, the drain
// resumes from the cursor, and variables no live peer knew a value for
// are recorded as ⊥ resets.
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	for g, u := range n.buffered {
		if g < n.nextGSeq {
			delete(n.buffered, g)
			// The purged update's effect is inside the adopted snapshot;
			// an own write issued during the rejoin window still completes.
			n.settleOwnLocked(u.writer, u.wseq)
			mcs.PutPayload(u.v)
		}
	}
	if rec := n.cfg.Recorder; rec != nil {
		for _, xi := range n.ix.VarIDs(n.id) {
			if n.tags[xi].Writer < 0 {
				rec.RecordRecover(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
	n.drainLocked()
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: replicas revert to ⊥; tags, the apply cursor and
// the reorder buffer are forgotten, to be re-learned from peer
// snapshots during Recover (mcs.CrashRestarter). Durable state
// survives: the node's own write counter, and — for node 0 — the
// sequencer counter (a reused global sequence number would fork the
// total order). Writes still blocked from before the crash complete:
// their requests died with the node.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
	}
	for g, u := range n.buffered {
		delete(n.buffered, g)
		mcs.PutPayload(u.v)
	}
	n.nextGSeq = 0
	n.ownApplied = n.wseq
	n.rejoining = true
	n.rcv.Cancel()
	n.rcf.CancelLocked()
	n.applied.Broadcast()
	n.mu.Unlock()
}

// Recover starts the rejoin handshake (mcs.CrashRestarter). Sequencer
// broadcasts reach every node, so every live node is a snapshot peer.
func (n *Node) Recover() {
	peers := make([]int, 0, n.cfg.Net.NumNodes()-1)
	for p := 0; p < n.cfg.Net.NumNodes(); p++ {
		if p != n.id {
			peers = append(peers, p)
		}
	}
	n.rcv.Begin(peers)
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

// ReconfigEngine exposes the node's epoch reconfiguration engine to the
// cluster facade.
func (n *Node) ReconfigEngine() *mcs.Reconfig { return n.rcf }

// ReconfigFlushLocked is a no-op (mcs.ReconfigHooks): the protocol has
// no coalescing outbox — requests and broadcasts go straight out.
func (n *Node) ReconfigFlushLocked() {}

// ReconfigFenceLocked is a no-op (mcs.ReconfigHooks): replica state is
// global, so a flip changes only which variables the application may
// access — writes in the sequencer pipeline stay valid across it.
func (n *Node) ReconfigFenceLocked(next *sharegraph.Index) {}

// ReconfigTransferVarsLocked reports no transfers (mcs.ReconfigHooks):
// every node already holds every variable's state.
func (n *Node) ReconfigTransferVarsLocked(next *sharegraph.Index) []int { return nil }

// ReconfigEncodeLocked is never reached — no node requests transfers —
// and encodes an empty body (mcs.ReconfigHooks).
func (n *Node) ReconfigEncodeLocked(enc *mcs.Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string) {
	return 0, nil
}

// ReconfigMergeLocked is the empty-body counterpart of
// ReconfigEncodeLocked (mcs.ReconfigHooks).
func (n *Node) ReconfigMergeLocked(d *mcs.Dec, from int, next *sharegraph.Index) error {
	return nil
}

// ReconfigFlipLocked swaps the access-scoping index
// (mcs.ReconfigHooks). There is no outbox to restamp: requests and
// broadcasts are sent unbatched.
func (n *Node) ReconfigFlipLocked(next *sharegraph.Index) { n.ix = next }

// ReconfigAbortLocked is a no-op (mcs.ReconfigHooks).
func (n *Node) ReconfigAbortLocked() {}

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
	_ mcs.ReconfigHooks  = (*Node)(nil)
)
