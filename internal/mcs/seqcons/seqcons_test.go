package seqcons

import (
	"sync"
	"testing"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

func harness(t *testing.T, n int) ([]*Node, *netsim.Network, *mcs.Recorder) {
	t.Helper()
	pl := sharegraph.NewPlacement(n)
	for p := 0; p < n; p++ {
		pl.Assign(p, "x", "y")
	}
	net := netsim.NewNetwork(n, netsim.Options{FIFO: true, Metrics: metrics.NewCollector()})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(n)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec
}

func TestWriteBlocksUntilSelfApply(t *testing.T) {
	nodes, _, _ := harness(t, 3)
	// After Write returns, the writer's own replica must reflect it
	// (read-your-writes), even without quiescing.
	for k := int64(1); k <= 10; k++ {
		if err := mcs.WriteInt(nodes[1], "x", k); err != nil {
			t.Fatal(err)
		}
		if v, _ := mcs.ReadInt(nodes[1], "x"); v != k {
			t.Fatalf("read-your-writes violated at %d: %d", k, v)
		}
	}
}

func TestTotalOrderAgreement(t *testing.T) {
	nodes, net, rec := harness(t, 4)
	// Concurrent writers to the same variable.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				if err := mcs.WriteInt(nodes[i], "x", int64(i*100+k+1)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	net.Quiesce()
	// Every node converges to the same final value (same total order).
	final, _ := mcs.ReadInt(nodes[0], "x")
	for i := 1; i < 4; i++ {
		if v, _ := mcs.ReadInt(nodes[i], "x"); v != final {
			t.Errorf("node %d final = %d, node 0 = %d", i, v, final)
		}
	}
	// Apply logs satisfy the PRAM witness (necessary for SC).
	if err := check.WitnessPRAM(4, rec.Logs()); err != nil {
		t.Fatalf("witness: %v", err)
	}
	// And every node applied the writes in the SAME order.
	logs := rec.Logs()
	var ref []check.Event
	for _, e := range logs[0] {
		if !e.IsRead {
			ref = append(ref, e)
		}
	}
	for i := 1; i < 4; i++ {
		var got []check.Event
		for _, e := range logs[i] {
			if !e.IsRead {
				got = append(got, e)
			}
		}
		if len(got) != len(ref) {
			t.Fatalf("node %d applied %d writes, node 0 applied %d", i, len(got), len(ref))
		}
		for k := range ref {
			if got[k] != ref[k] {
				t.Fatalf("node %d apply order diverges at %d: %v vs %v", i, k, got[k], ref[k])
			}
		}
	}
}

func TestSmallRunIsSequentiallyConsistent(t *testing.T) {
	nodes, net, rec := harness(t, 2)
	mcs.WriteInt(nodes[0], "x", 1)
	mcs.WriteInt(nodes[1], "y", 2)
	mcs.ReadInt(nodes[0], "y")
	mcs.ReadInt(nodes[1], "x")
	net.Quiesce()
	h, err := rec.History()
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.Check(h, check.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatalf("not sequentially consistent:\n%s", h)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	nodes, _, _ := harness(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("unknown kind must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: "bogus"})
}

func TestRequestToNonSequencerPanics(t *testing.T) {
	nodes, _, _ := harness(t, 2)
	// A well-formed (wseq, varID, val) request for x (VarID 0).
	var enc mcs.Enc
	enc.U32(0).U32(0).I64(1)
	defer func() {
		if recover() == nil {
			t.Error("request to non-sequencer must panic")
		}
	}()
	nodes[1].handle(netsim.Message{From: 0, To: 1, Kind: KindRequest, Payload: enc.Bytes()})
}
