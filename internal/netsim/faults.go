package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"partialdsm/internal/metrics"
)

// Seeded fault injection. The paper assumes reliable FIFO channels;
// Options.Faults removes that assumption deterministically: every
// message drawn through a lossy link decides its fate — dropped,
// duplicated, or delivered — from hash(seed, src, dst, per-pair
// sequence), the same shape as the virtual-latency delay draws, so one
// seed yields byte-identical fault schedules on both engines and every
// run (as deterministic as the per-pair send order itself).
//
// A dropped message is not removed from the engine: it flows through
// the entire normal delivery pipeline — latency draw, virtual-time
// scheduling, FIFO sequencing, in-flight accounting, the clock tick —
// and only the destination handler call is skipped. Quiesce therefore
// never hangs on a lossy network, and the virtual-time schedule of the
// surviving messages is identical with and without the loss.
//
// A duplicated message is enqueued immediately after the original on
// the same pair with its own copy of the payload (shared-payload
// refcounts stay balanced for the original's recipients); the
// duplicate is exempt from further draws, so one Send yields at most
// one extra delivery.
//
// Beyond the probabilistic knobs, every transport implements
// FaultController: hard partitions (CutLink — messages sent on the cut
// link are lost, in contrast to PauseLink's parking) and node
// crash/restart (messages from, to, and in flight toward a crashed
// node are lost; replica-state loss is the protocol layer's concern).

// FaultConfig configures probabilistic link faults (Options.Faults).
type FaultConfig struct {
	// Drop is the per-message probability, in [0, 1], that a message is
	// lost in transit: it consumes its slot in the delivery schedule
	// (in-flight accounting, FIFO sequencing and virtual-time deadlines
	// are unaffected) but never reaches the destination handler.
	Drop float64
	// Dup is the per-message probability, in [0, 1], that a message is
	// delivered twice: the duplicate follows the original immediately
	// on the same pair, with its own copy of the payload.
	Dup float64
	// Seed feeds the fault draws. It is independent of Options.Seed
	// (the latency seed), so loss patterns and delay patterns can be
	// varied separately.
	Seed int64
}

// validate rejects out-of-range probabilities; nil means no faults.
// NaN needs its own check: it fails both range comparisons, so without
// it a NaN rate would slip through and silently disable the draw it
// was meant to configure.
func (fc *FaultConfig) validate() error {
	if fc == nil {
		return nil
	}
	if math.IsNaN(fc.Drop) || fc.Drop < 0 || fc.Drop > 1 {
		return fmt.Errorf("Faults.Drop %v outside [0, 1]", fc.Drop)
	}
	if math.IsNaN(fc.Dup) || fc.Dup < 0 || fc.Dup > 1 {
		return fmt.Errorf("Faults.Dup %v outside [0, 1]", fc.Dup)
	}
	return nil
}

// FaultController is the optional hard-fault interface: partitions
// that lose messages and node crashes. Both built-in transports
// implement it on every configuration (FIFO or not, real or virtual
// latency); callers type-assert, like LinkController.
type FaultController interface {
	// CutLink severs the ordered link from → to: messages sent on it
	// while cut are lost (they still flow through delivery accounting,
	// so Quiesce completes). Unlike PauseLink, nothing is parked or
	// replayed on heal.
	CutLink(from, to int)
	// HealLink restores a link severed by CutLink.
	HealLink(from, to int)
	// Crash takes a node off the network: messages sent by it, to it,
	// and already in flight toward it are lost. Crashing a crashed
	// node is a no-op.
	Crash(node int)
	// Restart reconnects a crashed node. Whatever replica state the
	// node lost while down is the protocol layer's concern.
	Restart(node int)
}

// faultHash derives one message's fault randomness from (seed, src,
// dst, per-pair sequence) — PairDraw under the fault domain, so fault
// draws and delay draws are independent even under the same seed value.
func faultHash(seed int64, from, to int, seq uint64) uint64 {
	return PairDraw(DomainFault, seed, from, to, seq)
}

// prob32 converts a probability to a fixed-point threshold against a
// uniform 32-bit draw — integer comparison, bit-identical on every
// platform.
func prob32(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << 32
	}
	return uint64(p * (1 << 32))
}

// faultInjector holds one transport's fault state: the probabilistic
// draw thresholds plus the mutable partition/crash sets. The no-fault
// fast path is one bool and one atomic load.
type faultInjector struct {
	n      int
	probOn bool
	dropT  uint64 // fixed-point drop threshold in [0, 2^32]
	dupT   uint64
	seed   int64
	seqs   []atomic.Uint64 // per ordered pair: fault draws consumed
	col    *metrics.Collector

	barred  atomic.Int32 // cut links + crashed nodes; gates the mutex path
	mu      sync.Mutex
	cut     []bool // ordered pairs severed by CutLink
	crashed []bool // nodes taken down by Crash
}

// newFaultInjector builds the injector for a transport; always
// constructed (FaultController works without Options.Faults).
func newFaultInjector(n int, opts Options) *faultInjector {
	f := &faultInjector{n: n, col: opts.Metrics}
	if fc := opts.Faults; fc != nil && (fc.Drop > 0 || fc.Dup > 0) {
		f.probOn = true
		f.dropT = prob32(fc.Drop)
		f.dupT = prob32(fc.Dup)
		f.seed = fc.Seed
		f.seqs = make([]atomic.Uint64, n*n)
	}
	return f
}

func (f *faultInjector) record(kind string) {
	if f.col != nil {
		f.col.RecordFault(kind)
	}
}

// inject decides the message's fault fate at send time: marks a loss
// in place (the message still flows through the delivery pipeline) and
// returns the duplicate to enqueue right after the original, or nil.
// Fault draws consume the pair's sequence independently of the
// partition/crash state, so healing a link never shifts the schedule
// of later draws.
func (f *faultInjector) inject(msg *Message) *Message {
	if msg.faultDrawn {
		return nil // an injected duplicate: fate already decided
	}
	msg.faultDrawn = true
	var reason string
	dup := false
	if f.probOn {
		seq := f.seqs[msg.From*f.n+msg.To].Add(1) - 1
		h := faultHash(f.seed, msg.From, msg.To, seq)
		if f.dropT > 0 && uint64(uint32(h)) < f.dropT {
			reason = "drop"
		}
		if f.dupT > 0 && h>>32 < f.dupT {
			dup = true
		}
	}
	if f.barred.Load() != 0 {
		f.mu.Lock()
		switch {
		case f.cut != nil && f.cut[msg.From*f.n+msg.To]:
			reason, dup = "partition", false
		case f.crashed != nil && (f.crashed[msg.From] || f.crashed[msg.To]):
			reason, dup = "crash", false
		}
		f.mu.Unlock()
	}
	if reason != "" {
		msg.dropped = true
		f.record(reason)
	}
	if !dup {
		return nil
	}
	f.record("dup")
	d := *msg
	d.dropped = false // "drop + dup" nets out to one delivery, via the copy
	d.Payload = append([]byte(nil), msg.Payload...)
	d.SharedPayload = false
	d.SharedRefs = nil
	return &d
}

// deliverable reports whether an in-flight message may still reach its
// destination handler at delivery time: messages toward a node that
// crashed after they were sent are lost. The accounting around the
// skipped handler call is untouched, exactly like a send-time drop.
func (f *faultInjector) deliverable(msg *Message) bool {
	if msg.dropped {
		return false // loss already recorded at send time
	}
	if f == nil || f.barred.Load() == 0 {
		return true
	}
	f.mu.Lock()
	down := f.crashed != nil && f.crashed[msg.To]
	f.mu.Unlock()
	if down {
		f.record("crash")
		return false
	}
	return true
}

// cutLink implements FaultController.CutLink for both engines.
func (f *faultInjector) cutLink(from, to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cut == nil {
		f.cut = make([]bool, f.n*f.n)
	}
	if !f.cut[from*f.n+to] {
		f.cut[from*f.n+to] = true
		f.barred.Add(1)
	}
}

// healLink implements FaultController.HealLink.
func (f *faultInjector) healLink(from, to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cut != nil && f.cut[from*f.n+to] {
		f.cut[from*f.n+to] = false
		f.barred.Add(-1)
	}
}

// crash implements FaultController.Crash.
func (f *faultInjector) crash(node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed == nil {
		f.crashed = make([]bool, f.n)
	}
	if !f.crashed[node] {
		f.crashed[node] = true
		f.barred.Add(1)
	}
}

// restart implements FaultController.Restart.
func (f *faultInjector) restart(node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed != nil && f.crashed[node] {
		f.crashed[node] = false
		f.barred.Add(-1)
	}
}

// checkNode panics on an out-of-range node id (a programming error of
// the same class as sending to an unknown node).
func (f *faultInjector) checkNode(node int) {
	if node < 0 || node >= f.n {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", node, f.n))
	}
}

// checkLink panics on an out-of-range ordered link.
func (f *faultInjector) checkLink(from, to int) {
	if from < 0 || from >= f.n || to < 0 || to >= f.n {
		panic(fmt.Sprintf("netsim: link %d→%d out of range", from, to))
	}
}
