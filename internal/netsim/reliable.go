package netsim

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Reliable is an opt-in ack/retransmit layer over any Transport: the
// minimal machinery that restores the paper's reliable-FIFO channel
// assumption on top of a lossy, duplicating, or reordering network
// (Options.Faults, non-FIFO mode). Per ordered pair it adds
//
//   - sender-side sequence numbers: every data frame carries an 8-byte
//     header with its per-pair sequence;
//   - cumulative acks: the receiver answers every data frame with the
//     lowest sequence it has not yet delivered (kind "rel.ack", no
//     variable list, so the efficiency verdicts are unaffected);
//   - timeout-driven retransmission on the transport's virtual clock:
//     an unacked frame is resent every RetransmitTicks until acked or
//     MaxRetries is exhausted (then it is abandoned, bounding Quiesce);
//   - a receiver-side dedup/reorder window: duplicates are suppressed
//     and out-of-order frames buffered, so the application handler
//     sees each frame exactly once, in send order — FIFO is restored
//     even over a non-FIFO inner transport.
//
// Retransmit timers are virtual-clock callbacks, so with an inner
// transport in virtual-latency mode the whole recovery schedule is
// deterministic: same seed, same retransmissions, on either engine.
//
// Reliable forwards the optional interfaces (LinkController,
// PairMonitor, BacklogInspector, FaultController) to the inner
// transport. Metrics accounting happens in the inner transport and
// therefore counts every transmission — retransmits and acks are real
// messages crossing the simulated network.
type Reliable struct {
	inner Transport
	n     int
	rto   uint64
	retry int

	send []relSend
	recv []relRecv

	hmu      sync.Mutex
	handlers []Handler

	unacked        atomic.Int64 // frames awaiting ack, across all pairs (Quiesce gate)
	retransmits    atomic.Int64
	dupsSuppressed atomic.Int64
	acksSent       atomic.Int64
	abandoned      atomic.Int64

	onAbandon func(from, to int, attempts int)
}

// relAckKind is the wire kind of the layer's cumulative acks.
const relAckKind = "rel.ack"

// relHeader is the per-frame sequence header prepended to data
// payloads.
const relHeader = 8

// relSend is one ordered pair's sender state.
type relSend struct {
	mu      sync.Mutex
	next    uint64             // next sequence to assign
	pending map[uint64]Message // master copies awaiting ack
}

// relRecv is one ordered pair's receiver state. The mutex is held
// across application handler calls, so per-pair delivery is FIFO and
// exactly-once regardless of the inner transport's behaviour.
type relRecv struct {
	mu       sync.Mutex
	expected uint64             // next sequence to deliver
	buffered map[uint64]Message // out-of-order frames awaiting their gap
}

// ReliableOptions tune the retransmit layer.
type ReliableOptions struct {
	// RetransmitTicks is the virtual-clock timeout before an unacked
	// frame is resent. Virtual ticks advance one per delivery, so the
	// timeout must sit above the tick volume of a burst whose acks are
	// merely still in flight — too small an RTO storms the network with
	// spurious retransmissions. Zero picks 1<<20 ticks; when a loss
	// really occurred the deadline is reached cheaply via idle jumps,
	// so a generous RTO costs no wall time.
	RetransmitTicks uint64
	// MaxRetries bounds the retransmissions per frame; an unacked frame
	// is abandoned after them (counted in Stats.Abandoned), so Quiesce
	// terminates even against a fully partitioned link. Zero picks 16.
	MaxRetries int
	// OnAbandon, when set, is called once per abandoned frame with the
	// ordered pair and the number of transmissions attempted — the
	// layer's way of surfacing a permanent delivery failure to the
	// protocol above instead of only counting it. Called from a
	// virtual-clock callback with no layer locks held; it must not
	// block on network progress.
	OnAbandon func(from, to int, attempts int)
}

// NewReliable wraps inner with the ack/retransmit layer. Install
// application handlers through the wrapper's SetHandler (it claims the
// inner transport's handler slots) and send through the wrapper's Send;
// bypassing it for data traffic defeats the sequencing.
func NewReliable(inner Transport, opts ReliableOptions) *Reliable {
	rto := opts.RetransmitTicks
	if rto == 0 {
		rto = 1 << 20
	}
	retry := opts.MaxRetries
	if retry == 0 {
		retry = 16
	}
	n := inner.NumNodes()
	return &Reliable{
		inner:     inner,
		n:         n,
		rto:       rto,
		retry:     retry,
		send:      make([]relSend, n*n),
		recv:      make([]relRecv, n*n),
		handlers:  make([]Handler, n),
		onAbandon: opts.OnAbandon,
	}
}

// NumNodes returns the number of nodes.
func (r *Reliable) NumNodes() int { return r.inner.NumNodes() }

// Clock returns the inner transport's virtual-time clock.
func (r *Reliable) Clock() Clock { return r.inner.Clock() }

// SetHandler installs the application's delivery handler for a node.
func (r *Reliable) SetHandler(node int, h Handler) {
	r.hmu.Lock()
	r.handlers[node] = h
	r.hmu.Unlock()
	r.inner.SetHandler(node, func(msg Message) { r.dispatch(node, msg) })
}

func (r *Reliable) handler(node int) Handler {
	r.hmu.Lock()
	defer r.hmu.Unlock()
	return r.handlers[node]
}

// Send assigns the message its per-pair sequence, retains a master
// copy for retransmission, and transmits the first attempt. Each
// transmission sends a fresh copy of the payload — the receiver owns
// (and may recycle) what it is handed, never the master.
//
// The pair lock is held across the first transmission so sequence
// order equals wire order. Unlocking in between would let a competing
// Send on the pair transmit a later sequence first — normally healed
// by the reorder window, but if this goroutine then stalls in real
// time while virtual time races ahead (idle jumps cross retransmit
// deadlines at memory speed), the receiver's cumulative ack pins below
// the missing sequence and every later frame burns its whole retry
// budget against a gap only this goroutine can fill.
func (r *Reliable) Send(msg Message) {
	msg.dropped, msg.faultDrawn = false, false
	p := &r.send[msg.From*r.n+msg.To]
	p.mu.Lock()
	seq := p.next
	p.next++
	master := msg
	master.Payload = append([]byte(nil), msg.Payload...)
	master.SharedPayload = false
	master.SharedRefs = nil
	if p.pending == nil {
		p.pending = make(map[uint64]Message)
	}
	p.pending[seq] = master
	r.unacked.Add(1)
	// Arm before transmitting: if this goroutine stalls after the
	// registration, the due timer still retransmits (the receiver
	// dedupes the eventual double copy) instead of the frame having no
	// wire copy and no deadline at once.
	r.armTimer(msg.From, msg.To, seq, 0)
	r.transmit(master, seq)
	p.mu.Unlock()
}

// transmit sends one framed copy of a master message.
func (r *Reliable) transmit(master Message, seq uint64) {
	wire := master
	buf := make([]byte, relHeader+len(master.Payload))
	binary.BigEndian.PutUint64(buf, seq)
	copy(buf[relHeader:], master.Payload)
	wire.Payload = buf
	wire.CtrlBytes += relHeader
	r.inner.Send(wire)
}

// armTimer schedules the frame's retransmit deadline on the virtual
// clock. The callback reschedules only while the frame is unacked and
// retries remain, so Quiesce cannot diverge on it.
func (r *Reliable) armTimer(from, to int, seq uint64, attempt int) {
	r.inner.Clock().After(r.rto, func() { r.onTimeout(from, to, seq, attempt) })
}

// onTimeout retransmits an unacked frame or abandons it once the retry
// budget is spent.
func (r *Reliable) onTimeout(from, to int, seq uint64, attempt int) {
	p := &r.send[from*r.n+to]
	p.mu.Lock()
	master, ok := p.pending[seq]
	if ok && attempt >= r.retry {
		delete(p.pending, seq)
		p.mu.Unlock()
		r.unacked.Add(-1)
		r.abandoned.Add(1)
		if r.onAbandon != nil {
			r.onAbandon(from, to, attempt+1)
		}
		return
	}
	p.mu.Unlock()
	if !ok {
		return // acked in the meantime
	}
	r.retransmits.Add(1)
	r.armTimer(from, to, seq, attempt+1)
	r.transmit(master, seq)
}

// dispatch is the inner-transport handler: acks settle sender state,
// data frames go through the dedup/reorder window to the application
// handler.
func (r *Reliable) dispatch(node int, msg Message) {
	if msg.Kind == relAckKind {
		r.onAck(msg)
		return
	}
	seq := binary.BigEndian.Uint64(msg.Payload)
	app := msg
	app.Payload = msg.Payload[relHeader:]
	app.CtrlBytes -= relHeader
	app.SharedPayload = false
	app.SharedRefs = nil

	p := &r.recv[msg.From*r.n+msg.To]
	p.mu.Lock()
	switch {
	case seq < p.expected:
		// Duplicate (a retransmit that crossed its ack, or an injected
		// dup): suppress, but re-ack — the previous ack may have been
		// lost.
		p.mu.Unlock()
		r.dupsSuppressed.Add(1)
	case seq > p.expected:
		// A gap: hold the frame until retransmission fills it. The ack
		// below re-announces the gap's sequence.
		if p.buffered == nil {
			p.buffered = make(map[uint64]Message)
		}
		p.buffered[seq] = app
		p.mu.Unlock()
	default:
		// In order: deliver, then drain any buffered successors. The
		// pair lock is held across the handler calls, keeping per-pair
		// delivery FIFO and exactly-once.
		h := r.handler(node)
		for {
			if h != nil {
				h(app)
			}
			p.expected++
			next, ok := p.buffered[p.expected]
			if !ok {
				break
			}
			delete(p.buffered, p.expected)
			app = next
		}
		p.mu.Unlock()
	}
	r.sendAck(msg.To, msg.From)
}

// sendAck sends the receiver's cumulative ack for the ordered pair
// from → to: the next sequence it expects (everything below is
// delivered or buffered-behind-nothing). Carries no variable list, so
// the efficiency accounting of the wrapped protocol is unchanged.
func (r *Reliable) sendAck(node, peer int) {
	p := &r.recv[peer*r.n+node]
	p.mu.Lock()
	upTo := p.expected
	p.mu.Unlock()
	buf := make([]byte, relHeader)
	binary.BigEndian.PutUint64(buf, upTo)
	r.acksSent.Add(1)
	r.inner.Send(Message{
		From: node, To: peer, Kind: relAckKind,
		Payload: buf, CtrlBytes: relHeader,
	})
}

// onAck settles every pending frame the cumulative ack covers.
func (r *Reliable) onAck(msg Message) {
	upTo := binary.BigEndian.Uint64(msg.Payload)
	p := &r.send[msg.To*r.n+msg.From]
	p.mu.Lock()
	settled := 0
	for seq := range p.pending {
		if seq < upTo {
			delete(p.pending, seq)
			settled++
		}
	}
	p.mu.Unlock()
	if settled > 0 {
		r.unacked.Add(-int64(settled))
	}
}

// Quiesce drains the inner transport until every frame is acked or
// abandoned: each pass runs the pending retransmit timers (advancing
// virtual time as far as needed), so recovery completes without wall
// time passing.
func (r *Reliable) Quiesce() {
	for {
		r.inner.Quiesce()
		if r.unacked.Load() == 0 {
			return
		}
	}
}

// Close shuts the layer down: pending retransmit timers are protocol
// callbacks the inner Close cancels before draining.
func (r *Reliable) Close() { r.inner.Close() }

// ReliableStats counts the layer's recovery work.
type ReliableStats struct {
	// Retransmits counts frames resent after a timeout.
	Retransmits int64
	// DupsSuppressed counts received frames below the delivery window
	// (retransmit crossings and injected duplicates).
	DupsSuppressed int64
	// AcksSent counts cumulative acks sent.
	AcksSent int64
	// Abandoned counts frames dropped after MaxRetries (permanently
	// lost — e.g. sent into a partition that never healed).
	Abandoned int64
}

// Stats returns a snapshot of the layer's counters.
func (r *Reliable) Stats() ReliableStats {
	return ReliableStats{
		Retransmits:    r.retransmits.Load(),
		DupsSuppressed: r.dupsSuppressed.Load(),
		AcksSent:       r.acksSent.Load(),
		Abandoned:      r.abandoned.Load(),
	}
}

// PauseLink forwards to the inner transport (LinkController).
func (r *Reliable) PauseLink(from, to int) { r.innerLinks().PauseLink(from, to) }

// ResumeLink forwards to the inner transport (LinkController).
func (r *Reliable) ResumeLink(from, to int) { r.innerLinks().ResumeLink(from, to) }

func (r *Reliable) innerLinks() LinkController {
	lc, ok := r.inner.(LinkController)
	if !ok {
		panic(fmt.Sprintf("netsim: inner transport %T does not support link pausing", r.inner))
	}
	return lc
}

// PausedBacklog forwards to the inner transport (BacklogInspector).
func (r *Reliable) PausedBacklog() []PausedLink {
	bi, ok := r.inner.(BacklogInspector)
	if !ok {
		return nil
	}
	return bi.PausedBacklog()
}

// InboundIdle forwards to the inner transport (PairMonitor). Acks
// count as inbound traffic at this level; that only delays a hook, it
// never fires one early.
func (r *Reliable) InboundIdle(to int) bool { return r.innerPairs().InboundIdle(to) }

// OnInboundIdle forwards to the inner transport (PairMonitor).
func (r *Reliable) OnInboundIdle(to int, fn func()) { r.innerPairs().OnInboundIdle(to, fn) }

func (r *Reliable) innerPairs() PairMonitor {
	pm, ok := r.inner.(PairMonitor)
	if !ok {
		panic(fmt.Sprintf("netsim: inner transport %T does not support pair monitoring", r.inner))
	}
	return pm
}

// CutLink forwards to the inner transport (FaultController).
func (r *Reliable) CutLink(from, to int) { r.innerFaults().CutLink(from, to) }

// HealLink forwards to the inner transport (FaultController).
func (r *Reliable) HealLink(from, to int) { r.innerFaults().HealLink(from, to) }

// Crash forwards to the inner transport (FaultController).
func (r *Reliable) Crash(node int) { r.innerFaults().Crash(node) }

// Restart forwards to the inner transport (FaultController).
func (r *Reliable) Restart(node int) { r.innerFaults().Restart(node) }

func (r *Reliable) innerFaults() FaultController {
	fc, ok := r.inner.(FaultController)
	if !ok {
		panic(fmt.Sprintf("netsim: inner transport %T does not support fault injection", r.inner))
	}
	return fc
}
