package netsim

import (
	"fmt"
	"sort"
	"sync"
)

// Transport is the message-delivery seam every protocol layer programs
// against: an asynchronous reliable message-passing system connecting a
// fixed set of nodes. Implementations differ in how delivery is
// scheduled (one goroutine per channel, a sharded worker pool, …) but
// must agree on the semantic contract below, which
// conformance_test.go checks for every registered implementation:
//
//   - Send never blocks on the receiver and delivers each message to
//     the destination handler exactly once.
//   - With Options.FIFO, delivery order on each ordered node pair is
//     the send order on that pair; without it, messages may be
//     reordered arbitrarily.
//   - Handlers may call Send (re-entrancy); messages sent from handlers
//     are delivered like any other.
//   - Quiesce returns only when every sent message — including messages
//     sent by handlers during the wait — has been delivered and its
//     handler has returned.
//   - Close drains all in-flight messages, then releases every delivery
//     worker; it is idempotent, and Send after Close panics.
//   - Options.Metrics, when non-nil, receives exactly one RecordMessage
//     per Send with the message's kind, endpoints, byte split and
//     variable list.
//   - Payload ownership: a message's payload is immutable from Send
//     until the destination handler returns. The sender must not
//     mutate the slice after Send (it may pass the same slice to
//     several Sends — multicast); the transport must deliver exactly
//     the bytes it was given and must never read or write the slice
//     once the handler has returned, so a receiver that is the
//     payload's sole owner — including the last receiver of a
//     refcounted multicast (Message.SharedRefs) — may recycle the
//     buffer from inside its handler (see mcs.RecycleFrame). Retaining
//     a stale reference the transport never dereferences again is
//     permitted.
//   - Clock exposes the transport's deterministic virtual-time clock:
//     Now advances by one tick per delivered message and jumps to the
//     earliest pending deadline when the network goes idle; callbacks
//     registered with After/Schedule run exactly once, serialized, in
//     (deadline, registration) order. Quiesce runs every pending
//     callback before returning; Close cancels pending callbacks
//     before draining. See the package documentation in clock.go.
type Transport interface {
	// NumNodes returns the number of nodes the transport connects.
	NumNodes() int
	// SetHandler installs the delivery handler for a node. It must be
	// called before any message is sent to the node.
	SetHandler(node int, h Handler)
	// Send enqueues a message for asynchronous delivery.
	Send(msg Message)
	// Quiesce blocks until no message is in flight and no virtual-time
	// callback is pending (due callbacks are run during the wait).
	Quiesce()
	// Close cancels pending virtual-time callbacks, drains in-flight
	// messages, and shuts the transport down.
	Close()
	// Clock returns the transport's virtual-time clock.
	Clock() Clock
}

// LinkController is the optional link-level fault-injection interface.
// Both built-in transports support it on FIFO networks. Callers that
// need it must type-assert; invoking pause/resume against a transport
// that lacks it is a programming error of the same class as pausing a
// non-FIFO network, which the built-in engines answer with a panic —
// the cluster facade does the same.
type LinkController interface {
	// PauseLink holds back delivery on the ordered link from → to.
	PauseLink(from, to int)
	// ResumeLink releases a paused link; held messages are delivered in
	// order.
	ResumeLink(from, to int)
}

// PausedLink describes one paused ordered link together with the
// number of messages it is currently holding back.
type PausedLink struct {
	From, To int
	Held     int
}

// BacklogInspector is the optional introspection interface over paused
// links: PausedBacklog lists every paused link that currently holds
// undelivered messages. The cluster facade uses it to fail Quiesce
// fast instead of blocking forever on a backlog that cannot drain.
// Both built-in transports implement it.
type BacklogInspector interface {
	// PausedBacklog returns the paused links holding messages, in
	// (from, to) order. A paused link with an empty queue is not
	// reported — it cannot stall quiescence.
	PausedBacklog() []PausedLink
}

// Factory builds a transport over n nodes with the given options.
type Factory func(n int, opts Options) Transport

// Built-in transport kinds.
const (
	// KindClassic is the original engine: one delivery goroutine per
	// ordered node pair, one wakeup per message.
	KindClassic = "classic"
	// KindSharded is the batched engine: pair mailboxes are sharded
	// across a fixed worker pool and drained a batch at a time.
	KindSharded = "sharded"
)

var (
	registryMu sync.Mutex
	registry   = map[string]Factory{
		KindClassic: func(n int, opts Options) Transport { return NewNetwork(n, opts) },
		KindSharded: func(n int, opts Options) Transport { return NewSharded(n, opts) },
	}
)

// Register makes a transport constructor selectable by name through
// New. Registering a duplicate name panics; the conformance suite runs
// against every registered factory.
func Register(kind string, f Factory) {
	if kind == "" || f == nil {
		panic("netsim: Register needs a non-empty kind and a factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("netsim: transport %q already registered", kind))
	}
	registry[kind] = f
}

// New builds the named transport. The empty name selects KindClassic,
// keeping existing callers working unchanged. Invalid latency options
// — a negative MaxLatency, an unknown LatencyDist, a mis-shaped
// LatencyMatrix — are reported as errors here (the direct constructors
// panic on them, like on a non-positive node count).
func New(kind string, n int, opts Options) (Transport, error) {
	if err := opts.validate(n); err != nil {
		return nil, fmt.Errorf("netsim: %s", err)
	}
	if kind == "" {
		kind = KindClassic
	}
	registryMu.Lock()
	f := registry[kind]
	registryMu.Unlock()
	if f == nil {
		return nil, fmt.Errorf("netsim: unknown transport %q (have %v)", kind, Kinds())
	}
	return f(n, opts), nil
}

// Kinds returns the sorted names of all registered transports.
func Kinds() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compile-time checks: both built-in engines satisfy the full contract.
var (
	_ Transport        = (*Network)(nil)
	_ LinkController   = (*Network)(nil)
	_ PairMonitor      = (*Network)(nil)
	_ BacklogInspector = (*Network)(nil)
	_ FaultController  = (*Network)(nil)
	_ Transport        = (*Sharded)(nil)
	_ LinkController   = (*Sharded)(nil)
	_ PairMonitor      = (*Sharded)(nil)
	_ BacklogInspector = (*Sharded)(nil)
	_ FaultController  = (*Sharded)(nil)
	_ Transport        = (*Reliable)(nil)
	_ LinkController   = (*Reliable)(nil)
	_ PairMonitor      = (*Reliable)(nil)
	_ BacklogInspector = (*Reliable)(nil)
	_ FaultController  = (*Reliable)(nil)
)
