package netsim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// Benchmarks comparing the delivery engines on the message patterns
// the protocol layer generates: single-pair streams (one writer, one
// replica), multicast fan-out (one writer, many replicas), all-pairs
// cross traffic (every node writing), and ping-pong (request/reply
// protocols). The sharded engine's batch drains should win on the
// stream-shaped workloads and match elsewhere.

// benchTransports enumerates the engines under comparison.
func benchTransports(b *testing.B) []struct {
	name string
	make func(n int) Transport
} {
	b.Helper()
	return []struct {
		name string
		make func(n int) Transport
	}{
		{KindClassic, func(n int) Transport { return NewNetwork(n, Options{FIFO: true}) }},
		{KindSharded, func(n int) Transport { return NewSharded(n, Options{FIFO: true}) }},
	}
}

// BenchmarkStream floods one ordered pair and quiesces: the paper's
// PRAM write stream from one producer to one replica.
func BenchmarkStream(b *testing.B) {
	for _, tr := range benchTransports(b) {
		b.Run(tr.name, func(b *testing.B) {
			nw := tr.make(2)
			defer nw.Close()
			var count int64
			nw.SetHandler(0, func(Message) {})
			nw.SetHandler(1, func(Message) { atomic.AddInt64(&count, 1) })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nw.Send(Message{From: 0, To: 1})
			}
			nw.Quiesce()
			b.StopTimer()
			if got := atomic.LoadInt64(&count); got != int64(b.N) {
				b.Fatalf("delivered %d of %d", got, b.N)
			}
		})
	}
}

// BenchmarkFanout multicasts every message to 15 replicas — the
// multicast a write on a fully replicated variable produces.
func BenchmarkFanout(b *testing.B) {
	const n = 16
	for _, tr := range benchTransports(b) {
		b.Run(tr.name, func(b *testing.B) {
			nw := tr.make(n)
			defer nw.Close()
			var count int64
			for i := 0; i < n; i++ {
				nw.SetHandler(i, func(Message) { atomic.AddInt64(&count, 1) })
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for to := 1; to < n; to++ {
					nw.Send(Message{From: 0, To: to})
				}
			}
			nw.Quiesce()
			b.StopTimer()
			if got := atomic.LoadInt64(&count); got != int64(b.N)*(n-1) {
				b.Fatalf("delivered %d of %d", got, int64(b.N)*(n-1))
			}
		})
	}
}

// BenchmarkCrossTraffic has every node write to every other — the
// ring/star experiment workloads at full load.
func BenchmarkCrossTraffic(b *testing.B) {
	for _, nodes := range []int{8, 32} {
		for _, tr := range benchTransports(b) {
			b.Run(fmt.Sprintf("n=%d/%s", nodes, tr.name), func(b *testing.B) {
				nw := tr.make(nodes)
				defer nw.Close()
				var count int64
				for i := 0; i < nodes; i++ {
					nw.SetHandler(i, func(Message) { atomic.AddInt64(&count, 1) })
				}
				b.ResetTimer()
				sent := 0
				for i := 0; i < b.N; i++ {
					from := i % nodes
					for to := 0; to < nodes; to++ {
						if to == from {
							continue
						}
						nw.Send(Message{From: from, To: to})
						sent++
					}
				}
				nw.Quiesce()
				b.StopTimer()
				if got := atomic.LoadInt64(&count); got != int64(sent) {
					b.Fatalf("delivered %d of %d", got, sent)
				}
			})
		}
	}
}

// BenchmarkPingPong bounces one message back and forth — the
// round-trip shape of the atomic/sequential protocols, where batches
// degenerate to single messages and the classic engine should be
// matched, not beaten.
func BenchmarkPingPong(b *testing.B) {
	for _, tr := range benchTransports(b) {
		b.Run(tr.name, func(b *testing.B) {
			nw := tr.make(2)
			defer nw.Close()
			done := make(chan struct{})
			var remaining int64
			bounce := func(self int) Handler {
				return func(m Message) {
					if atomic.AddInt64(&remaining, -1) <= 0 {
						select {
						case done <- struct{}{}:
						default:
						}
						return
					}
					nw.Send(Message{From: self, To: 1 - self})
				}
			}
			nw.SetHandler(0, bounce(0))
			nw.SetHandler(1, bounce(1))
			b.ResetTimer()
			atomic.StoreInt64(&remaining, int64(b.N))
			nw.Send(Message{From: 0, To: 1})
			<-done
			b.StopTimer()
			nw.Quiesce()
		})
	}
}
