package netsim

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partialdsm/internal/metrics"
)

// Fault-injection conformance: every transport configuration must
// honour the FaultConfig / FaultController semantics — losses that
// never strand Quiesce, duplicates that arrive exactly twice,
// seed-determined schedules identical across engines, partitions that
// lose (not park), crashes that swallow in-flight traffic — and the
// Reliable wrapper must restore exactly-once FIFO delivery on top of
// all of it. The package-level goroutine-leak guard (TestMain) covers
// these tests too: a lossy or crashed network must not leak workers.

// quiesceWithin fails the test if Quiesce does not return in time —
// the regression harness for losses stranding in-flight accounting.
func quiesceWithin(t *testing.T, nw Transport, d time.Duration, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { nw.Quiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("Quiesce hung %s", what)
	}
}

// TestFaultDropAllStillQuiesces drives a burst through a fully lossy
// network: nothing may arrive, every loss must be accounted, and —
// the point — Quiesce must return, because dropped messages still flow
// through the delivery pipeline and settle the in-flight counters.
func TestFaultDropAllStillQuiesces(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n, msgs = 3, 120
		col := metrics.NewCollector()
		nw := v.make(t, n, Options{
			FIFO: true, Seed: 4, Metrics: col,
			MaxLatency: 10 * time.Microsecond,
			Faults:     &FaultConfig{Drop: 1, Seed: 99},
		})
		defer nw.Close()
		var delivered atomic.Int64
		for i := 0; i < n; i++ {
			nw.SetHandler(i, func(Message) { delivered.Add(1) })
		}
		for i := 0; i < msgs; i++ {
			nw.Send(Message{From: i % n, To: (i + 1) % n, Kind: "upd"})
		}
		quiesceWithin(t, nw, 30*time.Second, "on a fully lossy network (in-flight accounting lost the drops)")
		if got := delivered.Load(); got != 0 {
			t.Fatalf("%d messages delivered through Drop=1", got)
		}
		s := col.Snapshot()
		if s.Faults["drop"] != msgs {
			t.Fatalf("faults recorded %v, want drop=%d", s.Faults, msgs)
		}
		if s.Msgs != msgs {
			t.Fatalf("accounting saw %d sends, want %d (drops must still be accounted)", s.Msgs, msgs)
		}
	})
}

// TestFaultBurstHalfLossQuiesces is the satellite-1 regression: a
// concurrent burst under 50% loss, with handlers re-sending, must
// reach a true quiescence point with every survivor delivered.
func TestFaultBurstHalfLossQuiesces(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n, perSender = 4, 250
		nw := v.make(t, n, Options{
			FIFO: true, Seed: 7,
			MaxLatency: 10 * time.Microsecond,
			Faults:     &FaultConfig{Drop: 0.5, Seed: 31},
		})
		defer nw.Close()
		var delivered atomic.Int64
		for i := 0; i < n; i++ {
			i := i
			nw.SetHandler(i, func(m Message) {
				delivered.Add(1)
				// Relay once: re-entrant sends must survive loss too.
				if m.Payload[0] > 0 {
					nw.Send(Message{From: i, To: (i + 1) % n, Payload: []byte{m.Payload[0] - 1}})
				}
			})
		}
		var wg sync.WaitGroup
		for from := 0; from < n; from++ {
			wg.Add(1)
			go func(from int) {
				defer wg.Done()
				for k := 0; k < perSender; k++ {
					nw.Send(Message{From: from, To: (from + 1 + k%(n-1)) % n, Payload: []byte{2}})
				}
			}(from)
		}
		wg.Wait()
		quiesceWithin(t, nw, 30*time.Second, "under 50% loss (dropped messages stranded the in-flight count)")
		if delivered.Load() == 0 {
			t.Fatal("nothing delivered under 50% loss")
		}
	})
}

// TestFaultDupDeliversExactlyTwice checks Dup=1: every message arrives
// exactly twice, the duplicate immediately after the original in FIFO
// mode, with its own payload copy (the ownership probe scribbles over
// each delivery).
func TestFaultDupDeliversExactlyTwice(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const msgs = 100
		col := metrics.NewCollector()
		nw := v.make(t, 2, Options{
			FIFO: true, Seed: 5, Metrics: col,
			Faults: &FaultConfig{Dup: 1, Seed: 8},
		})
		defer nw.Close()
		var mu sync.Mutex
		var got []int
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(m Message) {
			mu.Lock()
			got = append(got, int(m.Payload[0]))
			mu.Unlock()
			m.Payload[0] = 0xAA // receiver owns the payload; a shared dup would corrupt its twin
		})
		for i := 0; i < msgs; i++ {
			nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
		}
		nw.Quiesce()
		mu.Lock()
		defer mu.Unlock()
		if len(got) != 2*msgs {
			t.Fatalf("delivered %d, want %d (each message exactly twice)", len(got), 2*msgs)
		}
		for i, s := range got {
			if s != i/2 {
				t.Fatalf("position %d holds %d, want %d (duplicate must follow its original)", i, s, i/2)
			}
		}
		if f := col.Snapshot().Faults["dup"]; f != msgs {
			t.Fatalf("dup faults recorded %d, want %d", f, msgs)
		}
	})
}

// TestFaultScheduleDeterministic sends the same single-writer stream
// through every transport configuration: the fault draws depend only
// on (seed, src, dst, per-pair sequence), so the surviving/duplicated
// delivery pattern must be byte-identical across engines and modes —
// and a different seed must yield a different pattern.
func TestFaultScheduleDeterministic(t *testing.T) {
	const msgs = 400
	run := func(t *testing.T, v variant, seed int64) []int {
		nw := v.make(t, 2, Options{
			FIFO: true, Seed: 3,
			Faults: &FaultConfig{Drop: 0.3, Dup: 0.2, Seed: seed},
		})
		defer nw.Close()
		var mu sync.Mutex
		var got []int
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(m Message) {
			mu.Lock()
			got = append(got, int(m.Payload[0])<<8|int(m.Payload[1]))
			mu.Unlock()
		})
		for i := 0; i < msgs; i++ {
			nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i >> 8), byte(i)}})
		}
		nw.Quiesce()
		mu.Lock()
		defer mu.Unlock()
		return got
	}
	var want []int
	forEachVariant(t, func(t *testing.T, v variant) {
		got := run(t, v, 17)
		if want == nil {
			want = got
			if len(want) == 0 || len(want) == msgs {
				t.Fatalf("schedule exercised no faults: %d of %d delivered", len(want), msgs)
			}
			if other := run(t, v, 18); reflect.DeepEqual(other, want) {
				t.Fatal("different fault seeds produced the identical schedule")
			}
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fault schedule diverged across transports: %d delivered here, %d on the first variant", len(got), len(want))
		}
	})
}

// TestFaultPartitionLosesMessages checks CutLink semantics: messages
// on the cut link are lost (never parked or replayed on heal), the
// reverse direction keeps flowing, and healing restores delivery.
func TestFaultPartitionLosesMessages(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		col := metrics.NewCollector()
		nw := v.make(t, 2, Options{FIFO: true, Seed: 6, Metrics: col})
		defer nw.Close()
		fc := nw.(FaultController)
		var fwd, rev atomic.Int64
		nw.SetHandler(0, func(Message) { rev.Add(1) })
		nw.SetHandler(1, func(m Message) { fwd.Add(1) })

		fc.CutLink(0, 1)
		for i := 0; i < 10; i++ {
			nw.Send(Message{From: 0, To: 1})
			nw.Send(Message{From: 1, To: 0})
		}
		quiesceWithin(t, nw, 30*time.Second, "across a hard partition")
		if got := fwd.Load(); got != 0 {
			t.Fatalf("%d messages crossed the cut link", got)
		}
		if got := rev.Load(); got != 10 {
			t.Fatalf("reverse direction delivered %d of 10 while 0→1 cut", got)
		}
		if f := col.Snapshot().Faults["partition"]; f != 10 {
			t.Fatalf("partition faults recorded %d, want 10", f)
		}

		fc.HealLink(0, 1)
		nw.Send(Message{From: 0, To: 1})
		nw.Quiesce()
		if got := fwd.Load(); got != 1 {
			t.Fatalf("after heal: %d delivered, want exactly 1 (no replay of lost messages)", got)
		}
	})
}

// TestFaultCrashLosesInFlight checks Crash semantics: traffic to and
// from a crashed node is lost, messages already in flight toward it
// when it crashes are lost too (parked behind a paused link, then
// crashed, then released — a deterministic in-flight window), and a
// restarted node rejoins.
func TestFaultCrashLosesInFlight(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		col := metrics.NewCollector()
		nw := v.make(t, 3, Options{FIFO: true, Seed: 9, Metrics: col})
		defer nw.Close()
		fc := nw.(FaultController)
		lc, hasPause := nw.(LinkController)
		var got [3]atomic.Int64
		for i := 0; i < 3; i++ {
			i := i
			nw.SetHandler(i, func(Message) { got[i].Add(1) })
		}

		// In-flight loss: park 5 messages toward node 1, crash it, then
		// release them — they were sent before the crash but must die.
		if hasPause {
			lc.PauseLink(0, 1)
			for i := 0; i < 5; i++ {
				nw.Send(Message{From: 0, To: 1})
			}
			fc.Crash(1)
			lc.ResumeLink(0, 1)
			quiesceWithin(t, nw, 30*time.Second, "draining in-flight traffic toward a crashed node")
			if n := got[1].Load(); n != 0 {
				t.Fatalf("%d in-flight messages delivered to a crashed node", n)
			}
		} else {
			fc.Crash(1)
		}

		// Send-time loss, both directions, while other links keep flowing.
		nw.Send(Message{From: 0, To: 1})
		nw.Send(Message{From: 1, To: 2})
		nw.Send(Message{From: 0, To: 2})
		quiesceWithin(t, nw, 30*time.Second, "with a crashed node in the topology")
		if n := got[1].Load(); n != 0 {
			t.Fatalf("message delivered to crashed node")
		}
		if n := got[2].Load(); n != 1 {
			t.Fatalf("healthy link delivered %d of 1 with node 1 down", n)
		}
		if f := col.Snapshot().Faults["crash"]; f == 0 {
			t.Fatal("no crash faults recorded")
		}

		fc.Restart(1)
		nw.Send(Message{From: 0, To: 1})
		nw.Quiesce()
		if n := got[1].Load(); n != 1 {
			t.Fatalf("after restart: %d delivered, want 1", n)
		}
	})
}

// TestReliableRestoresFIFOExactlyOnce is the retransmit-layer
// contract: over an inner transport that drops, duplicates and (in
// non-FIFO mode) reorders, the wrapper must hand the application every
// message exactly once, in per-pair send order.
func TestReliableRestoresFIFOExactlyOnce(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n, perPair = 3, 150
		inner := v.make(t, n, Options{
			FIFO: false, Seed: 11,
			MaxLatency: 20 * time.Microsecond,
			Faults:     &FaultConfig{Drop: 0.3, Dup: 0.2, Seed: 23},
		})
		// RTO well above the burst's tick volume: virtual ticks advance
		// one per delivery, so a small RTO would time out frames whose
		// acks are merely in (real-latency) flight and storm the network
		// with spurious retransmissions.
		r := NewReliable(inner, ReliableOptions{RetransmitTicks: 1 << 20, MaxRetries: 64})
		defer r.Close()
		var mu sync.Mutex
		got := make(map[[2]int][]int)
		for i := 0; i < n; i++ {
			i := i
			r.SetHandler(i, func(m Message) {
				mu.Lock()
				k := [2]int{m.From, i}
				got[k] = append(got[k], int(m.Payload[0])<<8|int(m.Payload[1]))
				mu.Unlock()
			})
		}
		var wg sync.WaitGroup
		for from := 0; from < n; from++ {
			wg.Add(1)
			go func(from int) {
				defer wg.Done()
				for seq := 0; seq < perPair; seq++ {
					for to := 0; to < n; to++ {
						if to == from {
							continue
						}
						r.Send(Message{From: from, To: to, Kind: "upd", Payload: []byte{byte(seq >> 8), byte(seq)}})
					}
				}
			}(from)
		}
		wg.Wait()
		quiesceWithin(t, r, 60*time.Second, "recovering a lossy non-FIFO stream")
		st := r.Stats()
		if st.Abandoned != 0 {
			t.Fatalf("%d frames abandoned under recoverable loss", st.Abandoned)
		}
		if st.Retransmits == 0 || st.DupsSuppressed == 0 {
			t.Fatalf("recovery machinery unexercised: %+v", st)
		}
		mu.Lock()
		defer mu.Unlock()
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if to == from {
					continue
				}
				seqs := got[[2]int{from, to}]
				if len(seqs) != perPair {
					t.Fatalf("pair %d→%d: delivered %d of %d exactly-once", from, to, len(seqs), perPair)
				}
				for i, s := range seqs {
					if s != i {
						t.Fatalf("pair %d→%d: position %d holds seq %d (FIFO not restored)", from, to, i, s)
					}
				}
			}
		}
	})
}

// TestReliableAbandonsAcrossPartition checks the termination bound: a
// frame sent into a never-healed partition is retransmitted MaxRetries
// times and then abandoned, so Quiesce still returns.
func TestReliableAbandonsAcrossPartition(t *testing.T) {
	inner := NewNetwork(2, Options{FIFO: true, Seed: 14, VirtualLatency: true})
	r := NewReliable(inner, ReliableOptions{RetransmitTicks: 64, MaxRetries: 3})
	defer r.Close()
	var delivered atomic.Int64
	r.SetHandler(0, func(Message) {})
	r.SetHandler(1, func(Message) { delivered.Add(1) })
	r.CutLink(0, 1)
	const frames = 5
	for i := 0; i < frames; i++ {
		r.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
	}
	quiesceWithin(t, r, 30*time.Second, "abandoning frames lost to a permanent partition")
	st := r.Stats()
	if st.Abandoned != frames {
		t.Fatalf("abandoned %d frames, want %d", st.Abandoned, frames)
	}
	if st.Retransmits != frames*3 {
		t.Fatalf("retransmitted %d times, want %d (MaxRetries per frame)", st.Retransmits, frames*3)
	}
	if delivered.Load() != 0 {
		t.Fatal("frame crossed a cut link")
	}

	// The stream recovers past the gap once the link heals: new frames
	// are renumbered after the abandoned ones, and the receiver must
	// not wait forever on sequences that will never arrive.
	r.HealLink(0, 1)
	r.Send(Message{From: 0, To: 1, Payload: []byte{42}})
	quiesceWithin(t, r, 30*time.Second, "delivering past abandoned sequence numbers")
	if delivered.Load() != 0 {
		// The abandoned frames left a sequence gap the receiver is
		// still waiting on — by design the post-heal frame is buffered,
		// not delivered: the layer trades availability for order. Both
		// outcomes terminate; pin the actual contract here.
		t.Fatal("frame delivered across an unfilled abandoned gap (dedup window contract changed)")
	}
}

// TestReliableVirtualDeterminism runs a phase-structured lossy
// workload on both engines in virtual-latency mode: the complete
// recovery schedule — retransmissions, suppressed dups, acks, fault
// draws — must be identical, because every send and timer runs on the
// serialized virtual timeline.
func TestReliableVirtualDeterminism(t *testing.T) {
	type trace struct {
		Delivered []string
		Stats     ReliableStats
		Faults    map[string]int64
		Msgs      int64
	}
	run := func(mk func(n int, opts Options) Transport) trace {
		col := metrics.NewCollector()
		inner := mk(3, Options{
			FIFO: true, Seed: 3, VirtualLatency: true,
			MaxLatency: 50 * time.Microsecond, Metrics: col,
			Faults: &FaultConfig{Drop: 0.25, Dup: 0.15, Seed: 77},
		})
		r := NewReliable(inner, ReliableOptions{RetransmitTicks: 4096, MaxRetries: 32})
		defer r.Close()
		var mu sync.Mutex
		var tr trace
		for i := 0; i < 3; i++ {
			i := i
			r.SetHandler(i, func(m Message) {
				mu.Lock()
				tr.Delivered = append(tr.Delivered, fmt.Sprintf("%d→%d:%d", m.From, i, m.Payload[0]))
				mu.Unlock()
			})
		}
		for phase := 0; phase < 4; phase++ {
			for from := 0; from < 3; from++ {
				for to := 0; to < 3; to++ {
					if to == from {
						continue
					}
					r.Send(Message{From: from, To: to, Kind: "upd", Payload: []byte{byte(phase)}})
				}
			}
			r.Quiesce()
		}
		tr.Stats = r.Stats()
		s := col.Snapshot()
		tr.Faults, tr.Msgs = s.Faults, s.Msgs
		return tr
	}
	classic := run(func(n int, o Options) Transport { return NewNetwork(n, o) })
	sharded := run(func(n int, o Options) Transport { return NewSharded(n, o) })
	if !reflect.DeepEqual(classic, sharded) {
		t.Fatalf("virtual-time recovery schedules diverged:\nclassic: %+v\nsharded: %+v", classic, sharded)
	}
	if classic.Stats.Retransmits == 0 {
		t.Fatal("workload exercised no retransmissions")
	}
}

// TestFaultConfigValidation pins the constructor contract for bad
// probabilities.
func TestFaultConfigValidation(t *testing.T) {
	nan := math.NaN()
	for _, bad := range []*FaultConfig{
		{Drop: -0.1}, {Drop: 1.5}, {Dup: 2}, {Dup: -1},
		// NaN fails both range comparisons, so it needs (and has) an
		// explicit rejection — it must not slip through and silently
		// disable the draw.
		{Drop: nan}, {Dup: nan},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FaultConfig %+v accepted", bad)
				}
			}()
			NewNetwork(2, Options{FIFO: true, Faults: bad})
		}()
	}
	if _, err := New(KindSharded, 2, Options{FIFO: true, Faults: &FaultConfig{Drop: 2}}); err == nil {
		t.Error("registry constructor accepted Drop=2")
	}
	if _, err := New(KindClassic, 2, Options{FIFO: true, Faults: &FaultConfig{Dup: nan}}); err == nil {
		t.Error("registry constructor accepted Dup=NaN")
	}
}

// TestFaultRestartWhilePartitioned pins the independence of the two
// hard-fault axes: restarting a crashed node does not heal links that
// were cut around it — traffic resumes only on uncut links, and the
// cut ones keep losing messages until HealLink.
func TestFaultRestartWhilePartitioned(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		col := metrics.NewCollector()
		nw := v.make(t, 3, Options{FIFO: true, Seed: 17, Metrics: col})
		defer nw.Close()
		fc := nw.(FaultController)
		var got [3]atomic.Int64
		for i := 0; i < 3; i++ {
			i := i
			nw.SetHandler(i, func(Message) { got[i].Add(1) })
		}

		fc.Crash(1)
		fc.CutLink(0, 1)
		fc.Restart(1) // restart inside the partition: the cut survives
		nw.Send(Message{From: 0, To: 1})
		nw.Send(Message{From: 2, To: 1})
		quiesceWithin(t, nw, 30*time.Second, "restarted node behind a cut link")
		if n := got[1].Load(); n != 1 {
			t.Fatalf("restarted node received %d of 1 (cut link must still lose, uncut must flow)", n)
		}
		if f := col.Snapshot().Faults["partition"]; f != 1 {
			t.Fatalf("partition faults recorded %d, want 1", f)
		}

		fc.HealLink(0, 1)
		nw.Send(Message{From: 0, To: 1})
		nw.Quiesce()
		if n := got[1].Load(); n != 2 {
			t.Fatalf("after heal: restarted node received %d, want 2", n)
		}
	})
}
