package netsim

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// Virtual time. Every transport carries a deterministic logical clock
// (Transport.Clock) that protocols use to schedule work — most notably
// the coalescing outbox's flush deadlines — without reference to wall
// time, so the same seed yields the same schedule on every engine and
// every machine.
//
// The clock counts message deliveries: each delivered message advances
// Now by one tick. When the network goes idle (no message in flight)
// the engine jumps the clock forward to the earliest pending deadline,
// so a callback never waits on traffic that is not coming. Idle points
// are observed after the delivery that settles the in-flight count to
// zero, inside Quiesce, and whenever a caller nudges the clock with
// AdvanceIdle (the coalescing protocols nudge on reads, which makes
// poll-style workloads self-advancing). Simulated link latency
// (Options.MaxLatency) is real-time machinery and does not advance
// virtual time.
//
// Callbacks run on whichever goroutine observes the deadline — a
// delivery worker, a quiescer, or an AdvanceIdle caller — one at a
// time, in (deadline, registration order): two callbacks never run
// concurrently, and callbacks due at the same advance always run in
// the order they were scheduled. A callback may Send and may schedule
// further callbacks; it must not block on network progress.
//
// Close cancels all pending callbacks before draining; Quiesce runs
// every pending callback (advancing virtual time as far as needed) and
// returns only when no message is in flight and no callback is
// pending, so a quiesced network is silent in virtual time too. A
// callback that unconditionally reschedules itself therefore makes
// Quiesce diverge — reschedule only while there is work left.

// Clock is the virtual-time facility of a transport. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current virtual tick.
	Now() uint64
	// After schedules fn to run when virtual time reaches Now()+d and
	// returns that deadline. fn runs exactly once, on a transport or
	// caller goroutine, serialized with all other clock callbacks.
	After(d uint64, fn func()) uint64
	// Schedule schedules fn for an absolute tick. A tick at or before
	// Now() fires at the next advance opportunity.
	Schedule(tick uint64, fn func())
	// AdvanceIdle gives the clock an advance opportunity: if no message
	// is in flight, virtual time jumps to the earliest pending deadline
	// and the due callbacks run before AdvanceIdle returns (unless
	// another goroutine is already firing, in which case it returns
	// immediately and that goroutine picks the callbacks up).
	AdvanceIdle()
}

// PairMonitor is the per-destination traffic observer both built-in
// engines implement; the adaptive coalescing mode uses it to flush a
// destination's frame as soon as the destination has no inbound
// traffic pending. Callers that need it type-assert, like
// LinkController.
type PairMonitor interface {
	// InboundIdle reports whether no message is currently in flight to
	// node `to` (from any sender).
	InboundIdle(to int) bool
	// OnInboundIdle registers fn to run once when inbound traffic to
	// `to` next drains. If `to` is already idle, fn runs at the next
	// clock advance opportunity instead of immediately, so the caller
	// may register from under its own locks. Hooks for the same
	// destination run in registration order.
	OnInboundIdle(to int, fn func())
}

// maxTick marks "no pending deadline".
const maxTick = ^uint64(0)

// timer is one scheduled callback. System timers (sys) carry transport
// machinery — virtual-latency message deliveries and pair drains — and
// survive drop: Close cancels protocol callbacks but must still
// deliver every sent message.
type timer struct {
	tick uint64
	seq  uint64
	fn   func()
	sys  bool
}

// timerHeap orders timers by (deadline, registration sequence).
type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// vclock is the engine-shared Clock implementation. The hot path — one
// tick per delivery — is an atomic increment plus an atomic compare
// against the cached earliest deadline; the heap lock is taken only
// when a deadline is actually due or being registered.
type vclock struct {
	now  atomic.Uint64
	next atomic.Uint64 // earliest pending deadline, maxTick when none

	mu      sync.Mutex
	cond    *sync.Cond // signalled when a firing pass completes
	heap    timerHeap
	seq     uint64
	firing  bool
	jumpReq bool // an idle-jump request deferred to the active firing pass
	hookReq bool // a pair-hook pass requested; serviced inside the firing claim
	dropped bool

	idle      func() bool // true when no message can still make progress without a jump
	stalled   func() bool // true when no message can progress even with jumps (all held on paused links)
	anyPaused func() bool // true while any link is held by PauseLink
	pairs     *pairWatch  // may be nil (no PairMonitor)
}

// newVClock builds a clock over the given idleness probes. idle is
// called without the clock lock ordering any engine lock above it:
// engines must never invoke clock methods while holding a lock idle
// needs. stalled is the stricter probe used for pair drain hooks: it
// must only report true when every in-flight message sits behind a
// paused link (for the real-sleep engines the two probes coincide; the
// virtual-latency path distinguishes messages a clock jump can still
// deliver). anyPaused must be cheap (an atomic load); it gates the
// expensive probes on the pair-hook path.
func newVClock(idle, stalled, anyPaused func() bool, pairs *pairWatch) *vclock {
	c := &vclock{idle: idle, stalled: stalled, anyPaused: anyPaused, pairs: pairs}
	c.next.Store(maxTick)
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the current virtual tick.
func (c *vclock) Now() uint64 { return c.now.Load() }

// After schedules fn at Now()+d.
func (c *vclock) After(d uint64, fn func()) uint64 {
	t := c.now.Load() + d
	c.Schedule(t, fn)
	return t
}

// Schedule registers fn at an absolute tick. Scheduling never runs fn
// inline — even a past deadline waits for the next advance opportunity
// — so callers may schedule while holding their own locks. After Close
// the clock is dropped and Schedule is a no-op.
func (c *vclock) Schedule(tick uint64, fn func()) { c.schedule(tick, fn, false) }

// scheduleSystem registers a transport-machinery callback (a
// virtual-latency delivery or pair drain). Unlike user timers, system
// timers survive drop and may still be registered afterwards: Close
// cancels protocol callbacks first and then drains, and every message
// already sent — including messages sent by handlers during the drain
// — must still be delivered.
func (c *vclock) scheduleSystem(tick uint64, fn func()) { c.schedule(tick, fn, true) }

func (c *vclock) schedule(tick uint64, fn func(), sys bool) {
	c.mu.Lock()
	if c.dropped && !sys {
		c.mu.Unlock()
		return
	}
	heap.Push(&c.heap, timer{tick: tick, seq: c.seq, fn: fn, sys: sys})
	c.seq++
	if tick < c.next.Load() {
		c.next.Store(tick)
	}
	c.mu.Unlock()
}

// tick advances virtual time by one delivered message and fires any
// callback whose deadline was reached.
func (c *vclock) tick() {
	if c.now.Add(1) >= c.next.Load() {
		c.fire(false, false)
	}
}

// AdvanceIdle fires due callbacks and, while the network is idle,
// jumps virtual time to pending deadlines. While traffic is in flight
// the nudge is a no-op without taking the clock lock: an idle jump is
// impossible, and in-flight deliveries guarantee future ticks that
// fire any due callbacks — so poll-heavy readers do not serialize on
// the clock while the network is busy.
func (c *vclock) AdvanceIdle() {
	hooks := c.requestHooks()
	if c.next.Load() == maxTick || (c.idle != nil && !c.idle()) {
		if hooks {
			// No jump possible, but the requested hook pass must still
			// run (hooks of idle destinations fire even on a busy net).
			c.fire(false, false)
		}
		return
	}
	c.fire(true, false)
}

// advanceWait is AdvanceIdle for quiescers: it waits out a concurrent
// firing pass instead of skipping, so Quiesce cannot miss work.
func (c *vclock) advanceWait() {
	c.requestHooks()
	c.fire(true, true)
}

// requestPairHooks asks for a pair-hook pass after a delivery drained
// a destination; the pass runs inside the firing claim, serialized
// with deliveries and timers, so hook order is part of the clock's
// deterministic timeline (in virtual mode: byte-identical traces even
// for overlapping, non-phase-structured drivers). If another goroutine
// holds the claim, it services the request before its next callback.
func (c *vclock) requestPairHooks() {
	if c.requestHooks() {
		c.fire(false, false)
	}
}

// requestHooks flags a hook pass for the next firing loop iteration;
// reports whether hooks are pending at all.
func (c *vclock) requestHooks() bool {
	if c.pairs == nil || c.pairs.hookCount.Load() == 0 {
		return false
	}
	c.mu.Lock()
	c.hookReq = true
	c.mu.Unlock()
	return true
}

// firePairHooks runs one pair-hook pass; called from the firing loop
// with the claim held and c.mu released. When the whole network is
// idle (in the paused-links-discounted sense) every hook fires — no
// inbound traffic can still make progress toward any destination, so
// waiting on a drain that cannot come would strand the hook; otherwise
// only hooks of destinations with no inbound traffic fire. A
// destination can only be busy at an idle point when a paused link
// holds traffic to it, so the idleness probe — which takes engine
// locks — is consulted only while a link is actually paused.
func (c *vclock) firePairHooks() {
	if c.pairs == nil || c.pairs.hookCount.Load() == 0 {
		return
	}
	all := false
	if c.anyPaused != nil && c.anyPaused() {
		all = c.stalled != nil && c.stalled()
	}
	c.pairs.runIdleHooks(all)
}

// pendingWork reports whether any callback or pair hook is still
// registered.
func (c *vclock) pendingWork() bool {
	if c.next.Load() != maxTick {
		return true
	}
	return c.pairs != nil && c.pairs.hookCount.Load() > 0
}

// fire runs due callbacks in (deadline, seq) order. With jump set it
// also advances virtual time to future deadlines while the network is
// idle. Only one goroutine fires at a time; with wait set the caller
// blocks until it can fire (quiescers). A jump request that collides
// with an active non-jump pass is handed to that pass via jumpReq
// rather than dropped — otherwise an idle-advance racing a tick-driven
// pass would strand a pending deadline on an idle network until the
// next external nudge.
func (c *vclock) fire(jump, wait bool) {
	c.mu.Lock()
	if c.firing {
		if jump {
			c.jumpReq = true
		}
		if !wait {
			c.mu.Unlock()
			return
		}
		for c.firing {
			c.cond.Wait()
		}
	}
	c.firing = true
	for {
		for {
			// A requested pair-hook pass runs before the next callback:
			// hooks triggered by a delivery fire right after it on the
			// same serialized timeline, keeping their order — and the
			// sends they make — deterministic in virtual mode.
			if c.hookReq {
				c.hookReq = false
				c.mu.Unlock()
				c.firePairHooks()
				c.mu.Lock()
				continue
			}
			if len(c.heap) == 0 {
				break
			}
			if c.jumpReq {
				c.jumpReq = false
				jump = true
			}
			min := c.heap[0]
			if min.tick > c.now.Load() {
				if !jump || c.idle == nil || !c.idle() {
					break
				}
				// Idle: jump virtual time forward to the deadline. CAS
				// keeps the clock monotonic against concurrent ticks.
				for {
					cur := c.now.Load()
					if cur >= min.tick || c.now.CompareAndSwap(cur, min.tick) {
						break
					}
				}
			}
			heap.Pop(&c.heap)
			c.mu.Unlock()
			min.fn()
			c.mu.Lock()
		}
		// Publish the new earliest deadline, release the firing claim,
		// and catch any timer that came due — or any jump or hook
		// request that arrived — while we were finishing.
		if len(c.heap) == 0 {
			c.next.Store(maxTick)
		} else {
			c.next.Store(c.heap[0].tick)
		}
		if c.hookReq || (len(c.heap) > 0 && (c.heap[0].tick <= c.now.Load() || c.jumpReq)) {
			continue
		}
		c.jumpReq = false // nothing left to jump to
		c.firing = false
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
}

// drop cancels every pending user callback (waiting out a firing pass
// first) and makes future Schedule calls no-ops. System timers —
// virtual-latency deliveries and drains — are kept: Close calls drop
// before draining, and dropping them would lose sent messages.
func (c *vclock) drop() {
	c.mu.Lock()
	for c.firing {
		c.cond.Wait()
	}
	var keep timerHeap
	for _, t := range c.heap {
		if t.sys {
			keep = append(keep, t)
		}
	}
	heap.Init(&keep)
	c.heap = keep
	c.dropped = true
	if len(keep) == 0 {
		c.next.Store(maxTick)
	} else {
		c.next.Store(keep[0].tick)
	}
	c.mu.Unlock()
	if c.pairs != nil {
		c.pairs.drop()
	}
}

// pairWatch tracks per-destination inbound in-flight counts and the
// one-shot drain hooks of the PairMonitor contract. The per-
// destination hook counters keep the no-hook case lock-free: the
// delivery hot path and the idle-advance walk pay one atomic load per
// probe and take the mutex only when a hook is actually registered.
type pairWatch struct {
	load      []atomic.Int32
	hookN     []atomic.Int32 // registered hooks per destination
	hookCount atomic.Int32   // total registered hooks
	mu        sync.Mutex
	hooks     [][]func()
	dropped   bool
}

func newPairWatch(n int) *pairWatch {
	return &pairWatch{
		load:  make([]atomic.Int32, n),
		hookN: make([]atomic.Int32, n),
		hooks: make([][]func(), n),
	}
}

// sent records a message bound for `to`.
func (w *pairWatch) sent(to int) { w.load[to].Add(1) }

// delivered retires a message bound for `to` and reports whether the
// destination's inbound traffic hit zero with drain hooks registered —
// the engine then requests a hook pass from the clock
// (requestPairHooks), which fires them inside the firing claim,
// serialized with deliveries and timers.
func (w *pairWatch) delivered(to int) bool {
	return w.load[to].Add(-1) == 0 && w.hookN[to].Load() > 0
}

// InboundIdle reports whether no message is in flight to `to`.
func (w *pairWatch) InboundIdle(to int) bool { return w.load[to].Load() == 0 }

// OnInboundIdle registers a one-shot drain hook for `to`.
func (w *pairWatch) OnInboundIdle(to int, fn func()) {
	w.mu.Lock()
	if w.dropped {
		w.mu.Unlock()
		return
	}
	w.hooks[to] = append(w.hooks[to], fn)
	w.hookN[to].Add(1)
	w.hookCount.Add(1)
	w.mu.Unlock()
}

// runHooks fires and clears `to`'s hooks in registration order.
func (w *pairWatch) runHooks(to int) {
	w.mu.Lock()
	fns := w.hooks[to]
	w.hooks[to] = nil
	w.hookN[to].Add(-int32(len(fns)))
	w.hookCount.Add(-int32(len(fns)))
	w.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// runIdleHooks fires the hooks of every currently idle destination, in
// destination order — the clock calls it at idle-advance points so a
// hook registered against an already-idle destination still runs. With
// all set (the network as a whole is idle), every hook fires: traffic
// held on paused links keeps a destination's load positive without any
// prospect of draining, and the frame behind the hook must still reach
// the link's queue.
func (w *pairWatch) runIdleHooks(all bool) {
	if w.hookCount.Load() == 0 {
		return
	}
	for to := range w.hooks {
		if w.hookN[to].Load() > 0 && (all || w.load[to].Load() == 0) {
			w.runHooks(to)
		}
	}
}

// drop discards all registered hooks (Close).
func (w *pairWatch) drop() {
	w.mu.Lock()
	for to := range w.hooks {
		w.hookN[to].Add(-int32(len(w.hooks[to])))
		w.hookCount.Add(-int32(len(w.hooks[to])))
		w.hooks[to] = nil
	}
	w.dropped = true
	w.mu.Unlock()
}
