package netsim

// Seeded per-pair draws. Every probabilistic decision in the simulator
// — message delay, fault injection, anything future — derives its
// randomness as a pure function of (seed, src, dst, per-pair sequence)
// through a splitmix64-style hash. No shared rng stream exists, so a
// draw's value is independent of how sends interleave across pairs and
// identical across engines and platforms. Distinct consumers separate
// their streams with a domain constant so delay draws and fault draws
// stay independent under the same seed.

// Domain constants for PairDraw. New consumers add a constant here
// rather than reusing one: two consumers sharing a domain would see
// correlated draws.
const (
	// DomainDelay feeds the virtual-latency delay distributions (PR 5).
	DomainDelay uint64 = 0x9e3779b97f4a7c15
	// DomainFault feeds drop/duplicate fault injection (PR 6).
	DomainFault uint64 = 0xd6e8feb86659fd93
)

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit
// avalanche, identical on every platform.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PairDraw derives one message's 64 bits of randomness from
// (domain, seed, src, dst, per-pair sequence). The mixing is exactly
// the PR-5 delayHash / PR-6 faultHash construction, so traces are
// byte-identical with earlier revisions.
func PairDraw(domain uint64, seed int64, from, to int, seq uint64) uint64 {
	h := mix64(uint64(seed) ^ domain)
	h = mix64(h ^ (uint64(from)<<32 | uint64(uint32(to))))
	return mix64(h + seq*0x9e3779b97f4a7c15)
}
