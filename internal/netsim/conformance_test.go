package netsim

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partialdsm/internal/metrics"
)

// The conformance suite: every registered transport — plus stress
// variants of the sharded engine — must satisfy the full semantic
// contract documented on the Transport interface. A new transport only
// needs netsim.Register (or an entry in extraVariants) to be held to
// the same bar.

// variant names one transport configuration under test.
type variant struct {
	name string
	make func(t *testing.T, n int, opts Options) Transport
	// serialDelivery marks variants whose non-FIFO mode still delivers
	// through a single worker and therefore never reorders; the
	// contract allows (not mandates) reordering, so the reorder probe
	// skips them.
	serialDelivery bool
}

// conformanceVariants enumerates every registered transport by name,
// plus hand-picked stress configurations.
func conformanceVariants() []variant {
	var out []variant
	for _, kind := range Kinds() {
		kind := kind
		out = append(out, variant{
			name: kind,
			make: func(t *testing.T, n int, opts Options) Transport {
				tr, err := New(kind, n, opts)
				if err != nil {
					t.Fatalf("New(%q): %v", kind, err)
				}
				return tr
			},
		})
	}
	out = append(out,
		// Virtual-latency mode on both engines: every conformance
		// property must hold when deliveries run as serialized
		// virtual-time callbacks instead of real-sleep goroutines
		// (MaxLatency set by a test becomes the virtual delay bound).
		variant{
			name: "classic-virtual",
			make: func(t *testing.T, n int, opts Options) Transport {
				opts.VirtualLatency = true
				return NewNetwork(n, opts)
			},
		},
		variant{
			name: "sharded-virtual",
			make: func(t *testing.T, n int, opts Options) Transport {
				opts.VirtualLatency = true
				return NewSharded(n, opts)
			},
		},
		variant{
			name: "sharded-1worker",
			make: func(t *testing.T, n int, opts Options) Transport {
				opts.Workers = 1
				return NewSharded(n, opts)
			},
			serialDelivery: true,
		},
		variant{
			name: "sharded-16workers",
			make: func(t *testing.T, n int, opts Options) Transport {
				opts.Workers = 16
				return NewSharded(n, opts)
			},
		},
	)
	return out
}

// forEachVariant runs fn as a subtest per transport configuration.
func forEachVariant(t *testing.T, fn func(t *testing.T, v variant)) {
	for _, v := range conformanceVariants() {
		v := v
		t.Run(v.name, func(t *testing.T) { fn(t, v) })
	}
}

// TestConformanceFIFOPerPair floods every ordered pair of a 3-node
// network from concurrent senders and checks that each pair's delivery
// order is its send order.
func TestConformanceFIFOPerPair(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n, perPair = 3, 400
		nw := v.make(t, n, Options{FIFO: true, MaxLatency: 20 * time.Microsecond, Seed: 9})
		defer nw.Close()
		var mu sync.Mutex
		got := make(map[[2]int][]int)
		for i := 0; i < n; i++ {
			i := i
			nw.SetHandler(i, func(m Message) {
				mu.Lock()
				k := [2]int{m.From, i}
				got[k] = append(got[k], int(m.Payload[0])<<8|int(m.Payload[1]))
				mu.Unlock()
			})
		}
		var wg sync.WaitGroup
		for from := 0; from < n; from++ {
			wg.Add(1)
			go func(from int) {
				defer wg.Done()
				for seq := 0; seq < perPair; seq++ {
					for to := 0; to < n; to++ {
						if to == from {
							continue
						}
						nw.Send(Message{From: from, To: to, Payload: []byte{byte(seq >> 8), byte(seq)}})
					}
				}
			}(from)
		}
		wg.Wait()
		nw.Quiesce()
		mu.Lock()
		defer mu.Unlock()
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if to == from {
					continue
				}
				seqs := got[[2]int{from, to}]
				if len(seqs) != perPair {
					t.Fatalf("pair %d→%d: delivered %d of %d", from, to, len(seqs), perPair)
				}
				for i, s := range seqs {
					if s != i {
						t.Fatalf("pair %d→%d: position %d holds seq %d (FIFO violated)", from, to, i, s)
					}
				}
			}
		}
	})
}

// TestConformanceNonFIFODeliversAll checks exact-once delivery without
// the FIFO guarantee.
func TestConformanceNonFIFODeliversAll(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const msgs = 500
		nw := v.make(t, 2, Options{FIFO: false, MaxLatency: 50 * time.Microsecond, Seed: 3})
		defer nw.Close()
		seen := make([]int32, msgs)
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(m Message) {
			atomic.AddInt32(&seen[int(m.Payload[0])<<8|int(m.Payload[1])], 1)
		})
		for i := 0; i < msgs; i++ {
			nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i >> 8), byte(i)}})
		}
		nw.Quiesce()
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("message %d delivered %d times", i, c)
			}
		}
	})
}

// TestConformanceNonFIFOCanReorder sends a slow first message followed
// by fast ones; a transport whose non-FIFO mode has any delivery
// concurrency must let a later message overtake it.
func TestConformanceNonFIFOCanReorder(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		if v.serialDelivery {
			t.Skip("single-worker variant delivers serially; reordering is permitted, not required")
		}
		const msgs = 64
		// The transport draws per-message latencies from a seeded rng;
		// MaxLatency high enough that overtaking is overwhelmingly
		// likely across msgs draws, with retries to keep flake-proof.
		for attempt := 0; attempt < 5; attempt++ {
			nw := v.make(t, 2, Options{FIFO: false, MaxLatency: 2 * time.Millisecond, Seed: int64(11 + attempt)})
			var mu sync.Mutex
			var order []int
			nw.SetHandler(0, func(Message) {})
			nw.SetHandler(1, func(m Message) {
				mu.Lock()
				order = append(order, int(m.Payload[0]))
				mu.Unlock()
			})
			for i := 0; i < msgs; i++ {
				nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
			}
			nw.Quiesce()
			nw.Close()
			mu.Lock()
			inOrder := true
			for i, s := range order {
				if s != i {
					inOrder = false
					break
				}
			}
			mu.Unlock()
			if !inOrder {
				return // reordering observed — contract exercised
			}
		}
		t.Fatal("non-FIFO mode delivered strictly in order across all attempts")
	})
}

// TestConformanceQuiesceAfterBursts runs several burst/quiesce rounds
// and checks each quiescence point is a true cut.
func TestConformanceQuiesceAfterBursts(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n, rounds, perRound = 4, 5, 200
		nw := v.make(t, n, Options{FIFO: true, Seed: 2})
		defer nw.Close()
		var count int64
		for i := 0; i < n; i++ {
			nw.SetHandler(i, func(Message) { atomic.AddInt64(&count, 1) })
		}
		for r := 1; r <= rounds; r++ {
			for k := 0; k < perRound; k++ {
				nw.Send(Message{From: k % n, To: (k + 1) % n})
			}
			nw.Quiesce()
			if got := atomic.LoadInt64(&count); got != int64(r*perRound) {
				t.Fatalf("round %d: %d delivered at quiescence, want %d", r, got, r*perRound)
			}
		}
	})
}

// TestConformanceHandlerReentrancy drives a relay chain entirely from
// inside handlers: node i forwards to node i+1 until the TTL runs out,
// across every pair — so handlers Send on the very transport invoking
// them. Quiesce must wait for the full cascade.
func TestConformanceHandlerReentrancy(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n, ttl = 4, 64
		nw := v.make(t, n, Options{FIFO: true, Seed: 5})
		defer nw.Close()
		var hops int64
		for i := 0; i < n; i++ {
			i := i
			nw.SetHandler(i, func(m Message) {
				atomic.AddInt64(&hops, 1)
				if m.Payload[0] > 0 {
					nw.Send(Message{From: i, To: (i + 1) % n, Payload: []byte{m.Payload[0] - 1}})
				}
			})
		}
		nw.Send(Message{From: 0, To: 1, Payload: []byte{ttl}})
		nw.Quiesce()
		if got := atomic.LoadInt64(&hops); got != ttl+1 {
			t.Fatalf("cascade incomplete at quiescence: %d hops, want %d", got, ttl+1)
		}
	})
}

// TestConformancePingPongFlood bounces many balls between two nodes —
// a wakeup-heavy re-entrant workload with single-message batches.
func TestConformancePingPongFlood(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const balls, bounces = 8, 100
		nw := v.make(t, 2, Options{FIFO: true, Seed: 6})
		defer nw.Close()
		var total int64
		bounce := func(self int) Handler {
			return func(m Message) {
				atomic.AddInt64(&total, 1)
				if m.Payload[0] > 0 {
					nw.Send(Message{From: self, To: 1 - self, Payload: []byte{m.Payload[0] - 1}})
				}
			}
		}
		nw.SetHandler(0, bounce(0))
		nw.SetHandler(1, bounce(1))
		for b := 0; b < balls; b++ {
			nw.Send(Message{From: 0, To: 1, Payload: []byte{bounces}})
		}
		nw.Quiesce()
		if got := atomic.LoadInt64(&total); got != balls*(bounces+1) {
			t.Fatalf("%d deliveries at quiescence, want %d", got, balls*(bounces+1))
		}
	})
}

// TestConformanceAccounting checks that the metrics collector sees
// exactly one record per send with the right byte split, kind and
// variable-touch marks.
func TestConformanceAccounting(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		col := metrics.NewCollector()
		nw := v.make(t, 3, Options{FIFO: true, Metrics: col, Seed: 4})
		defer nw.Close()
		for i := 0; i < 3; i++ {
			nw.SetHandler(i, func(Message) {})
		}
		const updates = 50
		for i := 0; i < updates; i++ {
			nw.Send(Message{From: 0, To: 1, Kind: "upd", CtrlBytes: 10, DataBytes: 8, Vars: []string{"x"}})
		}
		nw.Send(Message{From: 1, To: 2, Kind: "ntf", CtrlBytes: 4, Vars: []string{"y"}})
		nw.Quiesce()
		s := col.Snapshot()
		if s.Msgs != updates+1 {
			t.Fatalf("msgs = %d, want %d", s.Msgs, updates+1)
		}
		if s.CtrlBytes != updates*10+4 || s.DataBytes != updates*8 {
			t.Fatalf("bytes = ctrl %d / data %d, want %d / %d", s.CtrlBytes, s.DataBytes, updates*10+4, updates*8)
		}
		if s.PerKind["upd"] != updates || s.PerKind["ntf"] != 1 {
			t.Fatalf("per-kind = %v", s.PerKind)
		}
		for _, probe := range []struct {
			node int
			x    string
			want bool
		}{
			{0, "x", true}, {1, "x", true}, {2, "x", false},
			{1, "y", true}, {2, "y", true}, {0, "y", false},
		} {
			if got := col.Touched(probe.node, probe.x); got != probe.want {
				t.Errorf("touched(%d, %s) = %v, want %v", probe.node, probe.x, got, probe.want)
			}
		}
	})
}

// TestConformanceCloseDuringFlight closes the transport while a large
// burst is still in delivery: Close must drain everything first.
func TestConformanceCloseDuringFlight(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n, msgs = 4, 2000
		nw := v.make(t, n, Options{FIFO: true, Seed: 8})
		var count int64
		for i := 0; i < n; i++ {
			nw.SetHandler(i, func(Message) { atomic.AddInt64(&count, 1) })
		}
		for i := 0; i < msgs; i++ {
			nw.Send(Message{From: i % n, To: (i + 3) % n})
		}
		nw.Close() // no Quiesce first: Close itself must drain
		if got := atomic.LoadInt64(&count); got != msgs {
			t.Fatalf("Close returned with %d of %d delivered", got, msgs)
		}
	})
}

// TestConformanceCloseIdempotent double-closes.
func TestConformanceCloseIdempotent(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 1, Options{FIFO: true})
		nw.SetHandler(0, func(Message) {})
		nw.Close()
		nw.Close() // must not panic or deadlock
	})
}

// TestConformanceSendAfterClosePanics checks Send on a closed
// transport is a loud programming error.
func TestConformanceSendAfterClosePanics(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 1, Options{FIFO: true})
		nw.SetHandler(0, func(Message) {})
		nw.Close()
		defer func() {
			if recover() == nil {
				t.Error("send on closed transport must panic")
			}
		}()
		nw.Send(Message{From: 0, To: 0})
	})
}

// TestConformancePauseResume exercises the LinkController contract:
// paused links hold messages (other links unaffected), Resume releases
// them in order, and Close drains paused links.
func TestConformancePauseResume(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 3, Options{FIFO: true, Seed: 12})
		lc, ok := nw.(LinkController)
		if !ok {
			nw.Close()
			t.Skipf("%T does not implement LinkController", nw)
		}
		var mu sync.Mutex
		var toOne []int
		var toTwo int
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(m Message) {
			mu.Lock()
			toOne = append(toOne, int(m.Payload[0]))
			mu.Unlock()
		})
		nw.SetHandler(2, func(Message) {
			mu.Lock()
			toTwo++
			mu.Unlock()
		})

		lc.PauseLink(0, 1)
		const held = 20
		for i := 0; i < held; i++ {
			nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
		}
		// The unpaused link keeps flowing while 0→1 is held.
		for i := 0; i < 5; i++ {
			nw.Send(Message{From: 0, To: 2, Payload: []byte{0}})
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			done := toTwo == 5
			mu.Unlock()
			if done || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond) // grace period for wrongly-released messages
		mu.Lock()
		if toTwo != 5 {
			t.Fatalf("unpaused link delivered %d of 5 while 0→1 paused", toTwo)
		}
		if len(toOne) != 0 {
			t.Fatalf("paused link delivered %d messages", len(toOne))
		}
		mu.Unlock()

		lc.ResumeLink(0, 1)
		nw.Quiesce()
		mu.Lock()
		if len(toOne) != held {
			t.Fatalf("after resume: %d of %d delivered", len(toOne), held)
		}
		for i, s := range toOne {
			if s != i {
				t.Fatalf("after resume: position %d holds seq %d (order lost across pause)", i, s)
			}
		}
		mu.Unlock()

		// Close must drain a re-paused link rather than leak its queue.
		lc.PauseLink(0, 1)
		nw.Send(Message{From: 0, To: 1, Payload: []byte{held}})
		nw.Close()
		mu.Lock()
		defer mu.Unlock()
		if len(toOne) != held+1 {
			t.Fatalf("Close left paused message undelivered (%d of %d)", len(toOne), held+1)
		}
	})
}

// TestConformancePauseResumeStorm hammers PauseLink/ResumeLink while
// a stream is in flight with a slow handler, so pauses land mid-batch.
// Every message must still be delivered in order and Quiesce must not
// strand — the regression test for a resume racing a batched engine's
// pushback path.
func TestConformancePauseResumeStorm(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 2, Options{FIFO: true, Seed: 21})
		defer nw.Close()
		lc, ok := nw.(LinkController)
		if !ok {
			t.Skipf("%T does not implement LinkController", nw)
		}
		var mu sync.Mutex
		var got []int
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(m Message) {
			time.Sleep(50 * time.Microsecond) // keep batches mid-drain when pauses land
			mu.Lock()
			got = append(got, int(m.Payload[0])<<8|int(m.Payload[1]))
			mu.Unlock()
		})
		const msgs = 300
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // pause/resume storm concurrent with the stream
			defer wg.Done()
			for k := 0; k < 200; k++ {
				lc.PauseLink(0, 1)
				time.Sleep(20 * time.Microsecond)
				lc.ResumeLink(0, 1)
				time.Sleep(20 * time.Microsecond)
			}
		}()
		for i := 0; i < msgs; i++ {
			nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i >> 8), byte(i)}})
		}
		wg.Wait()
		lc.ResumeLink(0, 1) // final state: link open
		quiesced := make(chan struct{})
		go func() { nw.Quiesce(); close(quiesced) }()
		select {
		case <-quiesced:
		case <-time.After(30 * time.Second):
			t.Fatal("Quiesce hung: messages stranded by the pause/resume storm")
		}
		mu.Lock()
		defer mu.Unlock()
		if len(got) != msgs {
			t.Fatalf("delivered %d of %d after pause/resume storm", len(got), msgs)
		}
		for i, s := range got {
			if s != i {
				t.Fatalf("position %d holds seq %d (FIFO lost across pause/resume)", i, s)
			}
		}
	})
}

// TestConformanceConcurrentQuiesce runs Quiesce from several
// goroutines while traffic flows; every call must return only at a
// true cut (no message in flight at some instant during the call).
func TestConformanceConcurrentQuiesce(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const n = 3
		nw := v.make(t, n, Options{FIFO: true, Seed: 13})
		defer nw.Close()
		var count int64
		for i := 0; i < n; i++ {
			nw.SetHandler(i, func(Message) { atomic.AddInt64(&count, 1) })
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < 100; k++ {
					nw.Send(Message{From: g % n, To: (g + k) % n})
					if k%10 == 0 {
						nw.Quiesce()
					}
				}
			}(g)
		}
		wg.Wait()
		nw.Quiesce()
		if got := atomic.LoadInt64(&count); got != 400 {
			t.Fatalf("delivered %d of 400", got)
		}
	})
}

// TestConformanceRegistry checks the registry surface: every built-in
// kind resolves, the empty kind aliases classic, and unknown kinds
// error out with the available list.
func TestConformanceRegistry(t *testing.T) {
	kinds := Kinds()
	want := map[string]bool{KindClassic: false, KindSharded: false}
	for _, k := range kinds {
		if _, seen := want[k]; seen {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("built-in kind %q missing from Kinds() = %v", k, kinds)
		}
	}
	tr, err := New("", 2, Options{FIFO: true})
	if err != nil {
		t.Fatalf("New(\"\") = %v", err)
	}
	if _, isClassic := tr.(*Network); !isClassic {
		t.Errorf("empty kind built %T, want *Network", tr)
	}
	tr.Close()
	if _, err := New("no-such-engine", 2, Options{}); err == nil {
		t.Error("unknown kind must error")
	} else if !strings.Contains(err.Error(), KindSharded) {
		t.Errorf("error should list available kinds, got %q", err)
	}
}

// TestShardedWorkerDefault pins the documented default pool size.
func TestShardedWorkerDefault(t *testing.T) {
	nw := NewSharded(2, Options{FIFO: true})
	defer nw.Close()
	if nw.NumWorkers() < 2 {
		t.Fatalf("default pool = %d workers, want ≥ 2", nw.NumWorkers())
	}
	one := NewSharded(2, Options{FIFO: true, Workers: 1})
	defer one.Close()
	if one.NumWorkers() != 1 {
		t.Fatalf("Workers: 1 honoured as %d", one.NumWorkers())
	}
}

// TestShardedBatchesDrainAsOne sanity-checks the batching claim: with
// one worker wedged on a slow handler, a backlog accumulates in the
// mailbox and is then delivered in order by a single drain.
func TestShardedBatchesDrainAsOne(t *testing.T) {
	nw := NewSharded(2, Options{FIFO: true, Workers: 1})
	defer nw.Close()
	release := make(chan struct{})
	var mu sync.Mutex
	var got []int
	first := true
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(m Message) {
		if first {
			first = false
			<-release // wedge the worker so the backlog builds
		}
		mu.Lock()
		got = append(got, int(m.Payload[0]))
		mu.Unlock()
	})
	const msgs = 100
	for i := 0; i < msgs; i++ {
		nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
	}
	close(release)
	nw.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != msgs {
		t.Fatalf("delivered %d of %d", len(got), msgs)
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("position %d holds seq %d after batched drain", i, s)
		}
	}
}

// TestConformancePayloadOwnership checks the payload-ownership clause
// of the Transport contract: every payload must arrive exactly as sent
// (no mutation in flight, no sharing across deliveries), and once the
// destination handler has returned the transport must never read or
// write the slice again — receivers that own a payload are entitled to
// recycle it. The handler verifies each payload against the pattern its
// sequence number implies and then scribbles over the buffer, so any
// engine that re-reads or re-delivers a retained payload fails the
// pattern check on a later message.
func TestConformancePayloadOwnership(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		for _, fifo := range []bool{true, false} {
			name := "fifo"
			if !fifo {
				name = "nonfifo"
			}
			t.Run(name, func(t *testing.T) {
				const n, msgs, payloadLen = 3, 300, 24
				nw := v.make(t, n, Options{FIFO: fifo, MaxLatency: 10 * time.Microsecond, Seed: 4})
				defer nw.Close()

				fill := func(buf []byte, seq int) {
					for i := range buf {
						buf[i] = byte(seq + 31*i)
					}
				}
				var delivered, corrupt atomic.Int64
				for i := 0; i < n; i++ {
					nw.SetHandler(i, func(m Message) {
						seq := int(m.CtrlBytes) // sequence smuggled through the accounting field
						want := make([]byte, payloadLen)
						fill(want, seq)
						for j := range m.Payload {
							if m.Payload[j] != want[j] {
								corrupt.Add(1)
								break
							}
						}
						// Simulate receiver-side buffer recycling: after the
						// handler returns, the transport must not look at
						// these bytes again.
						for j := range m.Payload {
							m.Payload[j] = 0xAA
						}
						delivered.Add(1)
					})
				}
				for seq := 0; seq < msgs; seq++ {
					buf := make([]byte, payloadLen)
					fill(buf, seq)
					nw.Send(Message{From: seq % n, To: (seq + 1) % n, CtrlBytes: seq, Payload: buf})
				}
				nw.Quiesce()
				if got := delivered.Load(); got != msgs {
					t.Fatalf("delivered %d of %d payloads", got, msgs)
				}
				if c := corrupt.Load(); c != 0 {
					t.Fatalf("%d payloads arrived mutated or shared across deliveries", c)
				}
			})
		}
	})
}
