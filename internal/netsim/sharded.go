package netsim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sharded is the batched delivery engine. Instead of the classic
// Network's goroutine per ordered node pair — one wakeup and two
// global-lock round trips per message — it shards traffic into
// per-pair mailboxes drained by a fixed pool of workers. A mailbox
// with pending messages is scheduled once on the shared run queue; the
// worker that picks it up drains the whole backlog in one pass,
// fetching the destination handler once and settling the in-flight
// count once per batch, so a burst of k messages on a pair costs one
// wakeup instead of k. Per-pair FIFO order is preserved because a
// mailbox is only ever drained by one worker at a time, and the run
// queue is work-conserving: any idle worker can pick up any pair, so
// no pair waits behind a busy worker while another sits idle. The hot
// send path is lock-free except for the destination mailbox's own
// mutex: in-flight accounting is an atomic counter and the handler
// table is copy-on-write.
//
// In non-FIFO mode messages bypass the mailboxes and flow through the
// run queue individually, so concurrent workers may reorder them,
// matching the classic engine's contract.
//
// Simulated latency in the real-sleep mode (Options.MaxLatency without
// VirtualLatency) is slept in-line by the delivering worker, so with
// more concurrently active pairs than workers the delays serialize
// onto the pool instead of overlapping as they do with the classic
// engine's goroutine per pair. That keeps the semantics valid (the
// asynchronous model allows arbitrary finite delays) but makes the
// classic engine the better choice for real-sleep latency studies; the
// sharded engine targets throughput, where MaxLatency is zero. With
// Options.VirtualLatency both engines route every delivery through the
// shared virtual-time schedule (vlat.go) — the mailboxes and worker
// pool sit idle and the engines become trace-identical.
//
// Sharded implements Transport and LinkController; its semantics are
// checked against the classic engine by the conformance suite.
type Sharded struct {
	n       int
	opts    Options
	workers int

	clk         *vclock
	pairs       *pairWatch
	vlat        *vnet          // non-nil in virtual-latency mode; owns the delivery schedule
	faults      *faultInjector // always non-nil; cheap no-op without configured faults
	pausedLinks atomic.Int32   // links currently held by PauseLink

	handlers atomic.Value // []Handler, copy-on-write
	hmu      sync.Mutex   // serializes SetHandler stores
	closed   atomic.Bool
	inflight atomic.Int64
	qmu      sync.Mutex // guards quiet waiters
	quiet    *sync.Cond

	latMu sync.Mutex // guards rng; taken only when MaxLatency > 0
	rng   *rand.Rand //lint:allow seededrand real-latency jitter only (guarded by latMu); virtual mode draws via PairDraw

	bmu   sync.Mutex // serializes lazy mailbox creation
	boxes []atomic.Pointer[mailbox]
	run   runQueue
	wg    sync.WaitGroup
}

// runQueue is the workers' shared input: a FIFO of scheduled mailboxes
// (FIFO mode) and a FIFO of loose messages (non-FIFO mode).
type runQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ready  []*mailbox
	loose  []Message
	lats   []time.Duration
	closed bool
}

// mailbox holds one ordered pair's undelivered messages. scheduled is
// true while the mailbox sits in the run queue or is being drained,
// guaranteeing single-consumer FIFO.
type mailbox struct {
	to int

	mu        sync.Mutex
	items     []Message
	latencies []time.Duration // nil when MaxLatency == 0
	spare     []Message       // drained backing array, recycled for the next batch
	spareLat  []time.Duration
	scheduled bool
	paused    atomic.Bool
}

// NewSharded returns a sharded transport over n nodes. Options.Workers
// sets the pool size (0 = max(2, GOMAXPROCS)).
func NewSharded(n int, opts Options) *Sharded {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: network needs at least one node, got %d", n))
	}
	if err := opts.validate(n); err != nil {
		panic("netsim: " + err.Error())
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w < 2 {
			w = 2
		}
	}
	nw := &Sharded{
		n:       n,
		opts:    opts,
		workers: w,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		pairs:   newPairWatch(n),
		faults:  newFaultInjector(n, opts),
	}
	stalled := nw.idle
	if opts.VirtualLatency {
		nw.vlat = newVNet(n, opts)
		stalled = func() bool { return nw.inflight.Load() == nw.vlat.parkedCount() }
	}
	nw.clk = newVClock(nw.idle, stalled, func() bool { return nw.pausedLinks.Load() > 0 }, nw.pairs)
	nw.handlers.Store(make([]Handler, n))
	nw.quiet = sync.NewCond(&nw.qmu)
	nw.run.cond = sync.NewCond(&nw.run.mu)
	if nw.vlat != nil {
		// Virtual mode: every delivery runs on the clock's serialized
		// timeline; the mailboxes and worker pool would sit idle, so
		// they are not started at all.
		nw.vlat.clk = nw.clk
		nw.vlat.deliver = nw.deliverVirtual
		nw.vlat.start()
		return nw
	}
	if opts.FIFO {
		nw.boxes = make([]atomic.Pointer[mailbox], n*n)
	}
	nw.wg.Add(w)
	for i := 0; i < w; i++ {
		go nw.serve()
	}
	return nw
}

// deliverVirtual is the virtual-latency delivery hook: handler
// dispatch plus the per-message clock tick and in-flight settling,
// invoked from serialized clock callbacks. Fault-dropped messages skip
// only the handler call.
func (nw *Sharded) deliverVirtual(msg Message) {
	if nw.faults.deliverable(&msg) {
		h := nw.handlers.Load().([]Handler)[msg.To]
		if h != nil {
			h(msg)
		}
	}
	if nw.pairs.delivered(msg.To) {
		nw.clk.requestPairHooks()
	}
	nw.clk.tick()
	nw.settle(1)
}

// NumNodes returns the number of nodes.
func (nw *Sharded) NumNodes() int { return nw.n }

// NumWorkers returns the delivery pool size.
func (nw *Sharded) NumWorkers() int { return nw.workers }

// Clock returns the transport's virtual-time clock.
func (nw *Sharded) Clock() Clock { return nw.clk }

// InboundIdle reports whether no message is in flight to `to`
// (PairMonitor).
func (nw *Sharded) InboundIdle(to int) bool { return nw.pairs.InboundIdle(to) }

// OnInboundIdle registers a one-shot hook for when inbound traffic to
// `to` next drains (PairMonitor).
func (nw *Sharded) OnInboundIdle(to int, fn func()) { nw.pairs.OnInboundIdle(to, fn) }

// SetHandler installs the delivery handler for a node. The table is
// copy-on-write so the delivery workers read it without locking.
func (nw *Sharded) SetHandler(node int, h Handler) {
	if node < 0 || node >= nw.n {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", node, nw.n))
	}
	nw.hmu.Lock()
	defer nw.hmu.Unlock()
	old := nw.handlers.Load().([]Handler)
	next := make([]Handler, nw.n)
	copy(next, old)
	next[node] = h
	nw.handlers.Store(next)
}

// Send enqueues a message for asynchronous delivery. It never blocks
// on the receiver; sending to an unknown node or on a closed transport
// panics.
func (nw *Sharded) Send(msg Message) {
	if dup := nw.faults.inject(&msg); dup != nil {
		nw.send1(msg)
		nw.send1(*dup)
		return
	}
	nw.send1(msg)
}

// send1 enqueues one (possibly fault-marked) message.
func (nw *Sharded) send1(msg Message) {
	if msg.To < 0 || msg.To >= nw.n || msg.From < 0 || msg.From >= nw.n {
		panic(fmt.Sprintf("netsim: message endpoints %d→%d out of range", msg.From, msg.To))
	}
	if nw.closed.Load() {
		panic("netsim: send on closed network")
	}
	if nw.handlers.Load().([]Handler)[msg.To] == nil {
		panic(fmt.Sprintf("netsim: node %d has no handler installed", msg.To))
	}
	nw.inflight.Add(1)
	nw.pairs.sent(msg.To)
	var latency time.Duration
	if nw.vlat == nil && nw.opts.MaxLatency > 0 {
		nw.latMu.Lock()
		latency = drawRealLatency(nw.rng, nw.opts.MaxLatency)
		nw.latMu.Unlock()
	}
	if nw.opts.Metrics != nil {
		nw.opts.Metrics.RecordMessage(msg.Kind, msg.From, msg.To, msg.CtrlBytes, msg.DataBytes, msg.Vars)
	}
	if nw.vlat != nil {
		nw.vlat.send(msg)
		return
	}
	if !nw.opts.FIFO {
		// Loose delivery: messages go straight to the run queue, where
		// concurrent workers may pick up and reorder them.
		nw.run.mu.Lock()
		nw.run.loose = append(nw.run.loose, msg)
		nw.run.lats = append(nw.run.lats, latency)
		nw.run.cond.Signal()
		nw.run.mu.Unlock()
		return
	}
	mb := nw.mailbox(msg.From, msg.To)
	mb.mu.Lock()
	mb.items = append(mb.items, msg)
	if nw.opts.MaxLatency > 0 {
		mb.latencies = append(mb.latencies, latency)
	}
	wake := !mb.scheduled && !mb.paused.Load()
	if wake {
		mb.scheduled = true
	}
	mb.mu.Unlock()
	if wake {
		nw.enqueue(mb)
	}
}

// idle reports whether no message can still make progress — the
// clock's idleness probe. Messages held in paused mailboxes do not
// count (a paused link is an arbitrarily slow channel; virtual time
// keeps advancing around it). The mailbox walk runs only when traffic
// is in flight while a clock deadline is pending.
func (nw *Sharded) idle() bool {
	in := nw.inflight.Load()
	if in == 0 {
		return true
	}
	if nw.vlat != nil {
		return in == nw.vlat.pending() && nw.inflight.Load() == in
	}
	if nw.pausedLinks.Load() == 0 || nw.boxes == nil {
		return false
	}
	var held int64
	for i := range nw.boxes {
		mb := nw.boxes[i].Load()
		if mb == nil || !mb.paused.Load() {
			continue
		}
		mb.mu.Lock()
		held += int64(len(mb.items))
		mb.mu.Unlock()
	}
	return held == in && nw.inflight.Load() == in
}

// PausedBacklog lists every paused link currently holding messages
// (BacklogInspector).
func (nw *Sharded) PausedBacklog() []PausedLink {
	if nw.pausedLinks.Load() == 0 {
		return nil
	}
	if nw.vlat != nil {
		return nw.vlat.pausedBacklog()
	}
	if nw.boxes == nil {
		return nil
	}
	var out []PausedLink
	for i := range nw.boxes {
		mb := nw.boxes[i].Load()
		if mb == nil || !mb.paused.Load() {
			continue
		}
		mb.mu.Lock()
		held := len(mb.items)
		mb.mu.Unlock()
		if held > 0 {
			out = append(out, PausedLink{From: i / nw.n, To: i % nw.n, Held: held})
		}
	}
	return out
}

// mailbox returns the pair's mailbox, creating it on first use.
func (nw *Sharded) mailbox(from, to int) *mailbox {
	idx := from*nw.n + to
	if mb := nw.boxes[idx].Load(); mb != nil {
		return mb
	}
	nw.bmu.Lock()
	defer nw.bmu.Unlock()
	if mb := nw.boxes[idx].Load(); mb != nil {
		return mb
	}
	mb := &mailbox{to: to}
	nw.boxes[idx].Store(mb)
	return mb
}

// enqueue schedules a mailbox on the shared run queue.
func (nw *Sharded) enqueue(mb *mailbox) {
	nw.run.mu.Lock()
	nw.run.ready = append(nw.run.ready, mb)
	nw.run.cond.Signal()
	nw.run.mu.Unlock()
}

// serve is one worker's loop: pop a loose message or a scheduled
// mailbox and process it.
func (nw *Sharded) serve() {
	defer nw.wg.Done()
	q := &nw.run
	for {
		q.mu.Lock()
		for len(q.ready) == 0 && len(q.loose) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.loose) > 0 {
			msg := q.loose[0]
			latency := q.lats[0]
			q.loose = q.loose[1:]
			q.lats = q.lats[1:]
			q.mu.Unlock()
			if latency > 0 {
				time.Sleep(latency) //lint:allow realtime real-latency engine: loose-order delivery sleeps wall-clock by design
			}
			if nw.faults.deliverable(&msg) {
				h := nw.handlers.Load().([]Handler)[msg.To]
				if h != nil {
					h(msg)
				}
			}
			if nw.pairs.delivered(msg.To) {
				nw.clk.requestPairHooks()
			}
			nw.clk.tick()
			nw.settle(1)
			continue
		}
		if len(q.ready) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		mb := q.ready[0]
		q.ready = q.ready[1:]
		q.mu.Unlock()
		nw.drain(mb)
	}
}

// drain delivers one batch from the mailbox: the entire backlog is
// claimed under one lock acquisition, the destination handler is
// fetched once, and the in-flight count settles once at the end. If
// more messages arrived meanwhile the mailbox re-enters the run queue
// behind other pairs (fairness); if the pair was paused mid-batch the
// undelivered tail is pushed back in order.
func (nw *Sharded) drain(mb *mailbox) {
	mb.mu.Lock()
	if mb.paused.Load() || len(mb.items) == 0 {
		mb.scheduled = false
		mb.mu.Unlock()
		return
	}
	batch := mb.items
	lats := mb.latencies
	mb.items = mb.spare[:0]
	if mb.spareLat != nil {
		mb.latencies = mb.spareLat[:0]
	} else {
		mb.latencies = nil
	}
	mb.spare, mb.spareLat = nil, nil
	mb.mu.Unlock()

	h := nw.handlers.Load().([]Handler)[mb.to]
	delivered := 0
	for i := range batch {
		if mb.paused.Load() {
			// Push the undelivered tail back to the front, keeping order.
			mb.mu.Lock()
			mb.items = append(append([]Message{}, batch[i:]...), mb.items...)
			if lats != nil {
				mb.latencies = append(append([]time.Duration{}, lats[i:]...), mb.latencies...)
			}
			// Re-check the pause under the lock: ResumeLink may have
			// completed since the lockless load above, in which case it
			// saw an empty mailbox and did not reschedule — the pushed-
			// back tail would be stranded. Keep the scheduled claim and
			// requeue ourselves instead.
			if mb.paused.Load() {
				mb.scheduled = false
				mb.mu.Unlock()
			} else {
				mb.mu.Unlock()
				nw.enqueue(mb)
			}
			nw.settle(delivered)
			return
		}
		if lats != nil && lats[i] > 0 {
			time.Sleep(lats[i]) //lint:allow realtime real-latency engine: mailbox drain sleeps wall-clock by design
		}
		if h != nil && nw.faults.deliverable(&batch[i]) {
			h(batch[i])
		}
		if nw.pairs.delivered(mb.to) {
			nw.clk.requestPairHooks()
		}
		nw.clk.tick()
		delivered++
	}
	nw.settle(delivered)

	mb.mu.Lock()
	// Hand the drained backing array back for the next batch.
	mb.spare, mb.spareLat = batch[:0], lats[:0]
	if len(mb.items) == 0 || mb.paused.Load() {
		mb.scheduled = false
		mb.mu.Unlock()
		return
	}
	mb.mu.Unlock()
	nw.enqueue(mb)
}

// settle retires k delivered messages from the in-flight count and
// wakes quiescence waiters on the transition to zero, which is also an
// idle-advance opportunity for the virtual clock.
func (nw *Sharded) settle(k int) {
	if k == 0 {
		return
	}
	if nw.inflight.Add(-int64(k)) == 0 {
		nw.qmu.Lock()
		nw.quiet.Broadcast()
		nw.qmu.Unlock()
		nw.clk.AdvanceIdle()
	}
}

// PauseLink holds back delivery on the ordered link from → to. Only
// supported in FIFO mode, like the classic engine.
func (nw *Sharded) PauseLink(from, to int) {
	if !nw.opts.FIFO {
		panic("netsim: PauseLink requires a FIFO network")
	}
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		panic(fmt.Sprintf("netsim: link %d→%d out of range", from, to))
	}
	if nw.vlat != nil {
		if nw.vlat.pause(from, to) {
			nw.pausedLinks.Add(1)
		}
		return
	}
	if !nw.mailbox(from, to).paused.Swap(true) {
		nw.pausedLinks.Add(1)
	}
}

// ResumeLink releases a link paused by PauseLink; held messages are
// delivered in order.
func (nw *Sharded) ResumeLink(from, to int) {
	if !nw.opts.FIFO {
		panic("netsim: ResumeLink requires a FIFO network")
	}
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		panic(fmt.Sprintf("netsim: link %d→%d out of range", from, to))
	}
	if nw.vlat != nil {
		if nw.vlat.resume(from, to) {
			nw.pausedLinks.Add(-1)
		}
		return
	}
	nw.resume(nw.mailbox(from, to))
}

// CutLink severs the ordered link from → to: messages sent on it are
// lost, not parked (FaultController).
func (nw *Sharded) CutLink(from, to int) {
	nw.faults.checkLink(from, to)
	nw.faults.cutLink(from, to)
}

// HealLink restores a link severed by CutLink (FaultController).
func (nw *Sharded) HealLink(from, to int) {
	nw.faults.checkLink(from, to)
	nw.faults.healLink(from, to)
}

// Crash takes a node off the network: messages from it, to it, and in
// flight toward it are lost (FaultController).
func (nw *Sharded) Crash(node int) {
	nw.faults.checkNode(node)
	nw.faults.crash(node)
}

// Restart reconnects a crashed node (FaultController).
func (nw *Sharded) Restart(node int) {
	nw.faults.checkNode(node)
	nw.faults.restart(node)
}

// resume clears a mailbox's pause flag and reschedules it if messages
// are waiting.
func (nw *Sharded) resume(mb *mailbox) {
	if mb.paused.Swap(false) {
		nw.pausedLinks.Add(-1)
	}
	mb.mu.Lock()
	wake := len(mb.items) > 0 && !mb.scheduled
	if wake {
		mb.scheduled = true
	}
	mb.mu.Unlock()
	if wake {
		nw.enqueue(mb)
	}
}

// Quiesce blocks until no message is in flight and no virtual-time
// callback is pending; pending callbacks are run (advancing virtual
// time as far as needed), including any sends they make.
func (nw *Sharded) Quiesce() {
	for {
		if nw.inflight.Load() != 0 {
			nw.qmu.Lock()
			for nw.inflight.Load() != 0 {
				nw.quiet.Wait()
			}
			nw.qmu.Unlock()
		}
		nw.clk.advanceWait()
		if nw.inflight.Load() == 0 && !nw.clk.pendingWork() {
			return
		}
	}
}

// Close drains the transport and stops the worker pool. Messages
// already sent are still delivered; pending clock callbacks and pair
// hooks are cancelled first, then paused links are resumed. Send after
// Close panics; Close is idempotent.
func (nw *Sharded) Close() {
	nw.clk.drop()
	if nw.vlat != nil {
		// Virtual mode: deliveries are system timers that survived drop;
		// release paused pairs and drain everything through the clock.
		nw.vlat.resumeAll(&nw.pausedLinks)
		nw.Quiesce()
		if !nw.closed.Swap(true) {
			// Drain once more after the flag flips: a send that raced
			// the closed check may have scheduled a delivery after the
			// first Quiesce, and the pump must still be alive to run it.
			nw.Quiesce()
			nw.vlat.stopPump()
		}
		return
	}
	for i := range nw.boxes {
		if mb := nw.boxes[i].Load(); mb != nil && mb.paused.Load() {
			nw.resume(mb)
		}
	}
	nw.Quiesce()
	if !nw.closed.Swap(true) {
		nw.run.mu.Lock()
		nw.run.closed = true
		nw.run.cond.Broadcast()
		nw.run.mu.Unlock()
	}
	nw.wg.Wait()
}
