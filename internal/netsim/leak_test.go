package netsim

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain fails the package loudly if any test leaks goroutines — a
// transport that loses delivery workers on Close would otherwise pass
// silently. Every transport's Close must leave the goroutine count
// where it started.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if err := waitForGoroutines(baseline, 5*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "netsim: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline (test-runner bookkeeping goroutines wind down on their own
// schedule) and returns a stack dump on timeout.
func waitForGoroutines(baseline int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return nil
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			return fmt.Errorf("goroutine leak: %d live after tests, baseline %d; a transport lost workers on Close\n%s",
				n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
