package netsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"partialdsm/internal/metrics"
)

// Virtual-time latency simulation. With Options.VirtualLatency, the
// latency knob (Options.MaxLatency) stops being a real time.Sleep and
// becomes a virtual-time delivery deadline: every message draws a
// delay from a seeded distribution (Options.LatencyDist) and is
// delivered by a clock callback when virtual time reaches
// send-time + delay. Deliveries, coalescing flush timers and idle
// jumps then share one totally ordered virtual timeline — callbacks
// run serialized in (deadline, registration) order — so the same seed
// yields byte-identical message traces on every engine and every
// machine, and latency studies run at full speed: quiescing a
// 50ms-latency cluster is a few clock jumps, not 50ms of wall time.
//
// The delay of a message is derived purely from (seed, src, dst,
// per-pair sequence number) through a splitmix64-style hash, never
// from a shared rng stream, so the classic and sharded engines — and
// any number of repeated runs — see the same delay for the same
// message regardless of how sends interleave across pairs.
//
// On FIFO networks the drawn deadlines are ratcheted per ordered pair
// to be nondecreasing — a short draw behind a long one is lifted to
// its predecessor's deadline, and equal deadlines fire in registration
// (= send) order — which preserves per-pair FIFO on the shared
// timeline without perturbing zero-delay deadlines; non-FIFO networks
// deliver purely in deadline order, so a short-delay message overtakes
// a long-delay one exactly as the asynchronous model allows.
//
// Both engines delegate to the same vnet core below, differing only in
// the engine-specific delivery hook (handler dispatch + in-flight
// accounting). A per-transport pump goroutine gives the clock an
// advance opportunity whenever messages are scheduled, so blocking
// protocol round trips complete without any caller having to nudge
// the clock.

// LatencyDist names a virtual-latency delay distribution
// (Options.LatencyDist).
type LatencyDist string

const (
	// LatencyUniform draws each delay uniformly from [0, MaxLatency]
	// (the virtual-time analogue of the real-sleep mode, and the
	// default for the empty string).
	LatencyUniform LatencyDist = "uniform"
	// LatencyFixed delays every message by exactly MaxLatency.
	LatencyFixed LatencyDist = "fixed"
	// LatencyHeavyTail draws from a bounded Pareto-like distribution:
	// most delays are well under MaxLatency/4, a small fraction stretch
	// up to 8×MaxLatency — stragglers, as real networks have them.
	LatencyHeavyTail LatencyDist = "heavytail"
	// LatencyMatrix bounds each ordered link's delay by the
	// corresponding Options.LatencyMatrix entry (uniform per link);
	// the matrix must be NumNodes×NumNodes, and zero entries deliver
	// with zero delay. MaxLatency is unused and must stay zero.
	LatencyMatrix LatencyDist = "matrix"
)

// LatencyDists lists the supported virtual-latency distributions.
func LatencyDists() []LatencyDist {
	return []LatencyDist{LatencyUniform, LatencyFixed, LatencyHeavyTail, LatencyMatrix}
}

// validate checks the latency options against the node count. New
// returns its error; the direct constructors panic on it (a
// programming error of the same class as a non-positive node count).
func (o Options) validate(n int) error {
	if o.MaxLatency < 0 {
		return fmt.Errorf("MaxLatency is negative (%v)", o.MaxLatency)
	}
	if err := o.Faults.validate(); err != nil {
		return err
	}
	if !o.VirtualLatency {
		if o.LatencyDist != "" {
			return fmt.Errorf("LatencyDist %q requires VirtualLatency", o.LatencyDist)
		}
		if o.LatencyMatrix != nil {
			return fmt.Errorf("LatencyMatrix requires VirtualLatency")
		}
		return nil
	}
	switch o.LatencyDist {
	case "", LatencyUniform, LatencyFixed, LatencyHeavyTail:
		if o.LatencyMatrix != nil {
			return fmt.Errorf("LatencyMatrix is only used by the %q distribution, not %q", LatencyMatrix, o.LatencyDist)
		}
	case LatencyMatrix:
		if o.MaxLatency != 0 {
			// The matrix alone defines the delays; silently ignoring a
			// set MaxLatency would hide a misconfiguration.
			return fmt.Errorf("MaxLatency (%v) is unused by the %q distribution; the matrix bounds each link", o.MaxLatency, LatencyMatrix)
		}
		if len(o.LatencyMatrix) != n {
			return fmt.Errorf("LatencyMatrix has %d rows, need one per node (%d)", len(o.LatencyMatrix), n)
		}
		for i, row := range o.LatencyMatrix {
			if len(row) != n {
				return fmt.Errorf("LatencyMatrix row %d has %d entries, need one per node (%d)", i, len(row), n)
			}
			for j, d := range row {
				if d < 0 {
					return fmt.Errorf("LatencyMatrix[%d][%d] is negative (%v)", i, j, d)
				}
			}
		}
	default:
		return fmt.Errorf("unknown LatencyDist %q (have %v)", o.LatencyDist, LatencyDists())
	}
	return nil
}

// drawRealLatency draws the real-sleep mode's delay, guarding the
// Int63n overflow at MaxLatency == math.MaxInt64 (where max+1 wraps
// negative and Int63n would panic).
func drawRealLatency(rng *rand.Rand, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	if int64(max) == math.MaxInt64 {
		return time.Duration(rng.Int63())
	}
	return time.Duration(rng.Int63n(int64(max) + 1))
}

// delayHash derives the raw 64-bit randomness of one message's delay
// from (seed, src, dst, per-pair sequence) — no shared rng stream, so
// the value is independent of how sends interleave across pairs and
// identical across engines.
func delayHash(seed int64, from, to int, seq uint64) uint64 {
	return PairDraw(DomainDelay, seed, from, to, seq)
}

// delayFn builds the per-message delay function (in virtual ticks; one
// tick per nanosecond of MaxLatency) for the configured distribution.
func delayFn(opts Options) func(from, to int, seq uint64) uint64 {
	seed := opts.Seed
	max := uint64(opts.MaxLatency)
	switch opts.LatencyDist {
	case "", LatencyUniform:
		return func(from, to int, seq uint64) uint64 {
			if max == 0 {
				return 0
			}
			return delayHash(seed, from, to, seq) % (max + 1)
		}
	case LatencyFixed:
		return func(from, to int, seq uint64) uint64 { return max }
	case LatencyHeavyTail:
		// Discrete bounded Pareto built from hash bits only — float
		// math (Pow/Exp) is not bit-identical across architectures and
		// would break the cross-machine trace guarantee. The octave
		// index g has P(g=k) = 2^-(k+1); the delay is uniform within
		// octave [scale·2^(g-1), scale·2^g] with scale = max/8, so 3/4
		// of draws land at or below max/4, ~6% beyond max, hard cap
		// 8·max (saturating at MaxInt64 for extreme MaxLatency).
		return func(from, to int, seq uint64) uint64 {
			if max == 0 {
				return 0
			}
			scale := max / 8
			if scale == 0 {
				scale = 1
			}
			h := delayHash(seed, from, to, seq)
			g := bits.LeadingZeros64(h | 1)
			if g > 6 {
				g = 6
			}
			oct := scale
			for i := 0; i < g; i++ {
				if oct > math.MaxInt64/2 {
					oct = math.MaxInt64
					break
				}
				oct *= 2
			}
			var lo uint64
			if g > 0 {
				lo = oct / 2
			}
			d := lo + mix64(h)%(oct-lo+1)
			// The documented hard cap is 8·max; the scale→1 clamp for
			// sub-8-tick bounds would otherwise let the top octave
			// exceed it. Saturating like the octave walk above.
			cap8 := uint64(math.MaxInt64)
			if max <= math.MaxInt64/8 {
				cap8 = 8 * max
			}
			if d > cap8 {
				d = cap8
			}
			return d
		}
	case LatencyMatrix:
		m := opts.LatencyMatrix
		return func(from, to int, seq uint64) uint64 {
			linkMax := uint64(m[from][to])
			if linkMax == 0 {
				return 0
			}
			return delayHash(seed, from, to, seq) % (linkMax + 1)
		}
	default:
		panic(fmt.Sprintf("netsim: unvalidated LatencyDist %q", opts.LatencyDist))
	}
}

// vpair is one ordered pair's virtual delivery state.
type vpair struct {
	seq      uint64 // messages sent on the pair (delay derivation + FIFO delivery sequence)
	floor    uint64 // last assigned deadline; FIFO deadlines strictly increase past it
	nextDel  uint64 // next sequence number to deliver (FIFO gate)
	inFlight int    // undelivered messages on the pair (paused-backlog reporting)
	paused   bool
	parked   map[uint64]Message // fired but undeliverable messages, keyed by sequence
}

// vnet is the engine-shared virtual-latency delivery core. All
// deliveries run as serialized clock callbacks; vnet adds the delay
// draw, the per-pair FIFO gate, pause/resume parking, and the pump.
type vnet struct {
	n       int
	fifo    bool
	clk     *vclock
	col     *metrics.Collector
	delay   func(from, to int, seq uint64) uint64
	deliver func(Message) // engine hook: handler dispatch + accounting

	// scheduled counts messages registered in the clock and not yet
	// handed to a delivery; parkedN counts fired-but-parked messages;
	// stalledN counts the subset of parked messages sitting on a
	// currently-paused pair — the only ones that truly cannot progress
	// without a resume (a parked message on a resumed pair is drained
	// by a pending clock callback). All feed the engines' lock-free
	// idleness probes.
	scheduled atomic.Int64
	parkedN   atomic.Int64
	stalledN  atomic.Int64

	mu      sync.Mutex
	pairs   []vpair
	work    bool // pump wakeup pending
	stopped bool
	cond    *sync.Cond
	wg      sync.WaitGroup
}

// newVNet builds the virtual delivery core; the caller must set clk
// and deliver, then call start.
func newVNet(n int, opts Options) *vnet {
	v := &vnet{
		n:     n,
		fifo:  opts.FIFO,
		col:   opts.Metrics,
		delay: delayFn(opts),
		pairs: make([]vpair, n*n),
	}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// start launches the pump goroutine; stop (via stopPump) must be
// called exactly once after the transport has drained.
func (v *vnet) start() {
	v.wg.Add(1)
	go v.pump()
}

// send assigns the message its virtual delivery deadline and registers
// the delivery callback. The engine has already done its send-path
// accounting (in-flight count, pair watch, metrics). Deadline
// assignment and clock registration happen atomically under v.mu, so a
// pair's registration order is its send order and equal deadlines —
// zero delays most of all — keep FIFO through the clock's (deadline,
// registration) ordering; a zero-delay message is due immediately and
// never forces a jump.
func (v *vnet) send(msg Message) {
	idx := msg.From*v.n + msg.To
	now := v.clk.Now()
	v.mu.Lock()
	p := &v.pairs[idx]
	dseq := p.seq
	p.seq++
	d := v.delay(msg.From, msg.To, dseq)
	deadline := now + d
	if v.fifo && deadline < p.floor {
		// The pair's deadlines never decrease: a short draw behind a
		// long one waits for its predecessor, preserving FIFO.
		deadline = p.floor
	}
	p.floor = deadline
	p.inFlight++
	v.scheduled.Add(1)
	v.clk.scheduleSystem(deadline, func() { v.run(idx, dseq, msg) })
	v.work = true
	v.cond.Signal()
	stopped := v.stopped
	v.mu.Unlock()
	if v.col != nil {
		// The histogram records the *drawn* delay — a pure function of
		// (seed, src, dst, pair sequence), identical on every run and
		// engine. The effective wait (deadline − send-time Now) also
		// folds in the FIFO ratchet and the racy send-time clock
		// reading, which vary with goroutine scheduling; the drawn
		// delay is the simulated link property the paper's
		// delay/efficiency trade-off is about.
		v.col.RecordDelay(d)
	}
	if stopped {
		// A send that raced Close past the pump's shutdown drives its
		// own delivery: losing the message (and leaving the in-flight
		// count stuck) would be worse than delivering on the sender's
		// goroutine. (Sends this late are already a caller race with
		// Close; this keeps the exactly-once guarantee anyway.)
		v.clk.advanceWait()
	}
}

// run is the delivery callback: serialized with every other clock
// callback. A message whose pair is paused — or whose predecessor was
// parked by a pause and not yet redelivered — parks; otherwise it is
// delivered, followed by any parked successors that became deliverable.
func (v *vnet) run(idx int, dseq uint64, msg Message) {
	v.mu.Lock()
	p := &v.pairs[idx]
	v.scheduled.Add(-1)
	if v.fifo && (p.paused || dseq != p.nextDel) {
		if p.parked == nil {
			p.parked = make(map[uint64]Message)
		}
		p.parked[dseq] = msg
		v.parkedN.Add(1)
		if p.paused {
			v.stalledN.Add(1)
		}
		v.mu.Unlock()
		return
	}
	v.mu.Unlock()
	v.deliver(msg)
	v.mu.Lock()
	p.inFlight--
	if v.fifo {
		p.nextDel = dseq + 1
		v.drainLocked(p)
	}
	v.mu.Unlock()
}

// drainLocked delivers the pair's parked messages in sequence order
// while the pair stays unpaused. Called with v.mu held; releases and
// reacquires it around each delivery.
func (v *vnet) drainLocked(p *vpair) {
	for !p.paused {
		m, ok := p.parked[p.nextDel]
		if !ok {
			return
		}
		delete(p.parked, p.nextDel)
		v.parkedN.Add(-1)
		v.mu.Unlock()
		v.deliver(m)
		v.mu.Lock()
		p.nextDel++
		p.inFlight--
	}
}

// pause holds the ordered pair; reports whether it was newly paused.
func (v *vnet) pause(from, to int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	p := &v.pairs[from*v.n+to]
	if p.paused {
		return false
	}
	p.paused = true
	v.stalledN.Add(int64(len(p.parked)))
	return true
}

// resume releases the ordered pair and, if messages were parked,
// schedules a drain callback (serialized with deliveries) to redeliver
// them in order. Reports whether the pair was paused.
func (v *vnet) resume(from, to int) bool {
	idx := from*v.n + to
	v.mu.Lock()
	p := &v.pairs[idx]
	if !p.paused {
		v.mu.Unlock()
		return false
	}
	p.paused = false
	v.stalledN.Add(-int64(len(p.parked)))
	drain := len(p.parked) > 0
	v.mu.Unlock()
	if drain {
		v.clk.scheduleSystem(v.clk.Now(), func() {
			v.mu.Lock()
			v.drainLocked(&v.pairs[idx])
			v.mu.Unlock()
		})
		v.wake()
	}
	return true
}

// resumeAll releases every paused pair (Close), keeping the engine's
// paused-link counter in step.
func (v *vnet) resumeAll(pausedLinks *atomic.Int32) {
	for idx := range v.pairs {
		if v.resume(idx/v.n, idx%v.n) {
			pausedLinks.Add(-1)
		}
	}
}

// pausedBacklog lists paused pairs holding undelivered messages
// (parked or still scheduled), mirroring the real engines'
// BacklogInspector semantics.
func (v *vnet) pausedBacklog() []PausedLink {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []PausedLink
	for idx := range v.pairs {
		p := &v.pairs[idx]
		if p.paused && p.inFlight > 0 {
			out = append(out, PausedLink{From: idx / v.n, To: idx % v.n, Held: p.inFlight})
		}
	}
	return out
}

// pending counts in-flight messages that cannot progress without a
// clock jump (scheduled) or a resume (parked): when the engine's
// in-flight count equals it, the network is idle in the jump sense.
func (v *vnet) pending() int64 { return v.scheduled.Load() + v.parkedN.Load() }

// parkedCount feeds the stricter "stalled" probe: in-flight messages
// that only a resume can move — parked messages on pairs that are
// still paused, not post-resume stragglers a pending drain covers.
func (v *vnet) parkedCount() int64 { return v.stalledN.Load() }

// wake gives the pump a pass: some scheduled work may now be jumpable.
func (v *vnet) wake() {
	v.mu.Lock()
	v.work = true
	v.cond.Signal()
	v.mu.Unlock()
}

// pump is the transport's progress guarantee: whenever messages are
// scheduled, it gives the clock an advance opportunity, so a blocked
// protocol round trip (a writer waiting on its ack) completes without
// any other goroutine nudging the clock. advanceWait serializes with
// all other firing passes.
func (v *vnet) pump() {
	defer v.wg.Done()
	v.mu.Lock()
	for {
		for !v.work && !v.stopped {
			v.cond.Wait()
		}
		if v.work {
			// Drain before honouring stop, so a wakeup that arrived
			// just ahead of stopPump's broadcast is never abandoned.
			v.work = false
			v.mu.Unlock()
			v.clk.advanceWait()
			v.mu.Lock()
			continue
		}
		v.mu.Unlock()
		return
	}
}

// stopPump terminates the pump and waits for it to exit. Idempotent;
// call only after the transport has drained.
func (v *vnet) stopPump() {
	v.mu.Lock()
	v.stopped = true
	v.cond.Broadcast()
	v.mu.Unlock()
	v.wg.Wait()
}
