package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Conformance cases for the virtual-time Clock and the PairMonitor,
// run against every registered transport plus the stress variants —
// the clock is part of the Transport contract, so every engine must
// agree on ordering, Quiesce and Close semantics.

// TestConformanceClockTicksPerDelivery checks that Now advances by one
// per delivered message.
func TestConformanceClockTicksPerDelivery(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		const msgs = 120
		nw := v.make(t, 2, Options{FIFO: true, Seed: 1})
		defer nw.Close()
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(Message) {})
		if got := nw.Clock().Now(); got != 0 {
			t.Fatalf("fresh clock at tick %d, want 0", got)
		}
		for i := 0; i < msgs; i++ {
			nw.Send(Message{From: 0, To: 1})
		}
		nw.Quiesce()
		if got := nw.Clock().Now(); got != msgs {
			t.Fatalf("clock at tick %d after %d deliveries, want %d", got, msgs, msgs)
		}
	})
}

// TestConformanceClockDeterministicOrder registers callbacks out of
// deadline order — with ties — and checks they fire in (deadline,
// registration) order on an idle advance.
func TestConformanceClockDeterministicOrder(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 2, Options{FIFO: true, Seed: 1})
		defer nw.Close()
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(Message) {})
		clk := nw.Clock()
		var mu sync.Mutex
		var order []int
		log := func(id int) func() {
			return func() { mu.Lock(); order = append(order, id); mu.Unlock() }
		}
		clk.Schedule(30, log(0))
		clk.Schedule(10, log(1))
		clk.Schedule(20, log(2))
		clk.Schedule(10, log(3)) // same deadline as id 1: registration order breaks the tie
		clk.After(5, log(4))     // deadline 5: earliest of all
		clk.AdvanceIdle()        // network idle: jump through every deadline
		mu.Lock()
		defer mu.Unlock()
		want := []int{4, 1, 3, 2, 0}
		if len(order) != len(want) {
			t.Fatalf("fired %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("fired %v, want %v", order, want)
			}
		}
	})
}

// TestConformanceClockCallbackSends has a callback send messages;
// Quiesce must cover both the callback and its sends, and the
// callback's sends must advance the clock further.
func TestConformanceClockCallbackSends(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 2, Options{FIFO: true, Seed: 1})
		defer nw.Close()
		var delivered atomic.Int64
		nw.SetHandler(0, func(Message) { delivered.Add(1) })
		nw.SetHandler(1, func(Message) { delivered.Add(1) })
		clk := nw.Clock()
		clk.After(3, func() {
			for i := 0; i < 5; i++ {
				nw.Send(Message{From: 0, To: 1})
			}
		})
		nw.Quiesce() // must run the callback and drain its sends
		if got := delivered.Load(); got != 5 {
			t.Fatalf("%d deliveries after Quiesce, want 5", got)
		}
		if got := clk.Now(); got < 5 {
			t.Fatalf("clock at %d after callback sends, want ≥ 5", got)
		}
	})
}

// TestConformanceClockScheduleDuringDrain schedules from inside a
// firing callback: the chained callback must run in the same advance
// (its deadline is due) and in order.
func TestConformanceClockScheduleDuringDrain(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 1, Options{FIFO: true, Seed: 1})
		defer nw.Close()
		nw.SetHandler(0, func(Message) {})
		clk := nw.Clock()
		var mu sync.Mutex
		var order []string
		clk.After(1, func() {
			mu.Lock()
			order = append(order, "first")
			mu.Unlock()
			clk.Schedule(clk.Now(), func() {
				mu.Lock()
				order = append(order, "chained")
				mu.Unlock()
			})
		})
		nw.Quiesce()
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 2 || order[0] != "first" || order[1] != "chained" {
			t.Fatalf("order = %v, want [first chained]", order)
		}
	})
}

// TestConformanceClockCloseWithPendingTimers closes a transport with
// callbacks still registered: they must never fire, Close must not
// hang, and (via the package TestMain) no goroutine may leak.
func TestConformanceClockCloseWithPendingTimers(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 2, Options{FIFO: true, Seed: 1})
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(Message) {})
		var fired atomic.Int64
		nw.Clock().After(1_000_000, func() { fired.Add(1) })
		nw.Clock().Schedule(1, func() { fired.Add(1) })
		nw.Send(Message{From: 0, To: 1}) // in-flight work Close must still drain
		nw.Close()
		if got := fired.Load(); got != 0 {
			t.Fatalf("%d cancelled callbacks fired during Close", got)
		}
		// Scheduling after Close is a silent no-op, not a panic.
		nw.Clock().After(1, func() { fired.Add(1) })
	})
}

// TestConformanceClockIdleJump checks AdvanceIdle against a pending
// far deadline: with no traffic at all, the clock must jump straight
// to it rather than wait for ticks that are not coming.
func TestConformanceClockIdleJump(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 1, Options{FIFO: true, Seed: 1})
		defer nw.Close()
		nw.SetHandler(0, func(Message) {})
		clk := nw.Clock()
		fired := make(chan struct{})
		clk.After(1_000, func() { close(fired) })
		clk.AdvanceIdle()
		select {
		case <-fired:
		default:
			t.Fatal("AdvanceIdle did not jump to the pending deadline on an idle network")
		}
		if got := clk.Now(); got != 1_000 {
			t.Fatalf("clock at %d after jump, want 1000", got)
		}
	})
}

// TestConformancePairMonitor checks the per-destination traffic
// observer: idleness tracking across a wedged handler, drain hooks in
// registration order, and hook delivery for already-idle destinations
// at the next advance.
func TestConformancePairMonitor(t *testing.T) {
	forEachVariant(t, func(t *testing.T, v variant) {
		nw := v.make(t, 3, Options{FIFO: true, Seed: 1})
		defer nw.Close()
		pm, ok := nw.(PairMonitor)
		if !ok {
			t.Skipf("%T does not implement PairMonitor", nw)
		}
		release := make(chan struct{})
		var wedged sync.Once
		nw.SetHandler(0, func(Message) {})
		nw.SetHandler(1, func(Message) { wedged.Do(func() { <-release }) })
		nw.SetHandler(2, func(Message) {})

		if !pm.InboundIdle(1) || !pm.InboundIdle(2) {
			t.Fatal("fresh transport reports inbound traffic")
		}
		// Wedge node 1's handler so traffic to it is observably in flight.
		nw.Send(Message{From: 0, To: 1})
		deadline := time.Now().Add(2 * time.Second)
		for pm.InboundIdle(1) {
			if time.Now().After(deadline) {
				t.Fatal("in-flight message never observed by InboundIdle")
			}
			time.Sleep(100 * time.Microsecond)
		}
		var mu sync.Mutex
		var order []int
		pm.OnInboundIdle(1, func() { mu.Lock(); order = append(order, 1); mu.Unlock() })
		pm.OnInboundIdle(1, func() { mu.Lock(); order = append(order, 2); mu.Unlock() })
		close(release)
		nw.Quiesce()
		mu.Lock()
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			mu.Unlock()
			t.Fatalf("drain hooks fired as %v, want [1 2]", order)
		}
		mu.Unlock()

		// A hook on an already-idle destination runs at the next advance
		// opportunity, not inline.
		ran := make(chan struct{})
		pm.OnInboundIdle(2, func() { close(ran) })
		select {
		case <-ran:
			t.Fatal("idle-destination hook ran inline from OnInboundIdle")
		default:
		}
		nw.Clock().AdvanceIdle()
		select {
		case <-ran:
		default:
			t.Fatal("idle-destination hook did not run at the advance point")
		}
	})
}
