package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPauseHoldsMessages(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: true})
	defer nw.Close()
	var count int64
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(Message) { atomic.AddInt64(&count, 1) })
	nw.PauseLink(0, 1)
	for i := 0; i < 5; i++ {
		nw.Send(Message{From: 0, To: 1})
	}
	time.Sleep(5 * time.Millisecond)
	if got := atomic.LoadInt64(&count); got != 0 {
		t.Fatalf("paused link delivered %d messages", got)
	}
	nw.ResumeLink(0, 1)
	nw.Quiesce()
	if got := atomic.LoadInt64(&count); got != 5 {
		t.Fatalf("resumed link delivered %d of 5", got)
	}
}

func TestPauseOnlyAffectsOneDirection(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: true})
	defer nw.Close()
	var fwd, bwd int64
	nw.SetHandler(0, func(Message) { atomic.AddInt64(&bwd, 1) })
	nw.SetHandler(1, func(Message) { atomic.AddInt64(&fwd, 1) })
	nw.PauseLink(0, 1)
	nw.Send(Message{From: 1, To: 0}) // reverse direction unaffected
	deadline := time.Now().Add(time.Second)
	for atomic.LoadInt64(&bwd) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("reverse direction blocked by pause")
		}
		time.Sleep(time.Millisecond)
	}
	nw.ResumeLink(0, 1)
}

func TestPausePreservesFIFO(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: true})
	defer nw.Close()
	var mu sync.Mutex
	var got []byte
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload[0])
		mu.Unlock()
	})
	nw.Send(Message{From: 0, To: 1, Payload: []byte{0}})
	nw.Quiesce()
	nw.PauseLink(0, 1)
	for i := 1; i <= 10; i++ {
		nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
	}
	nw.ResumeLink(0, 1)
	nw.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 11 {
		t.Fatalf("delivered %d of 11", len(got))
	}
	for i, b := range got {
		if int(b) != i {
			t.Fatalf("FIFO violated across pause: position %d = %d", i, b)
		}
	}
}

func TestCloseResumesPausedLinks(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: true})
	var count int64
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(Message) { atomic.AddInt64(&count, 1) })
	nw.PauseLink(0, 1)
	nw.Send(Message{From: 0, To: 1})
	done := make(chan struct{})
	go func() {
		nw.Close() // must not deadlock on the paused message
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a paused link")
	}
	if atomic.LoadInt64(&count) != 1 {
		t.Error("message lost across Close")
	}
}

func TestPauseRequiresFIFO(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: false})
	defer nw.Close()
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Error("PauseLink on non-FIFO network must panic")
		}
	}()
	nw.PauseLink(0, 1)
}

func TestPauseOutOfRangePanics(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: true})
	defer nw.Close()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range PauseLink must panic")
		}
	}()
	nw.PauseLink(0, 7)
}
