package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partialdsm/internal/metrics"
)

// Tests for the virtual-time latency mode: determinism of the delay
// derivation and the delivery schedule, wall-time independence of
// Quiesce/Close, pause/resume with pending deadlines, and the
// hardened option validation. The generic transport contract for the
// virtual variants is covered by the conformance suite.

// virtualEngines enumerates the two engines in virtual mode.
var virtualEngines = []struct {
	name string
	make func(n int, opts Options) Transport
}{
	{"classic", func(n int, opts Options) Transport { return NewNetwork(n, opts) }},
	{"sharded", func(n int, opts Options) Transport { return NewSharded(n, opts) }},
}

// TestVirtualDelayDerivation pins the delay function: engine- and
// interleaving-independent (pure in seed, src, dst, per-pair seq),
// distribution bounds respected.
func TestVirtualDelayDerivation(t *testing.T) {
	base := Options{VirtualLatency: true, MaxLatency: time.Millisecond, Seed: 42}
	uni := delayFn(base)
	uniAgain := delayFn(base)
	max := uint64(base.MaxLatency)
	var sum float64
	for seq := uint64(0); seq < 4096; seq++ {
		d := uni(1, 2, seq)
		if d != uniAgain(1, 2, seq) {
			t.Fatalf("delay draw not reproducible at seq %d", seq)
		}
		if d > max {
			t.Fatalf("uniform delay %d exceeds MaxLatency %d", d, max)
		}
		sum += float64(d)
	}
	if mean := sum / 4096; mean < 0.4*float64(max) || mean > 0.6*float64(max) {
		t.Errorf("uniform mean %.0f not near MaxLatency/2 = %d", mean, max/2)
	}
	if uni(1, 2, 7) == uni(2, 1, 7) && uni(1, 2, 8) == uni(2, 1, 8) && uni(1, 2, 9) == uni(2, 1, 9) {
		t.Error("delays do not depend on link direction")
	}

	fixed := delayFn(Options{VirtualLatency: true, LatencyDist: LatencyFixed, MaxLatency: time.Millisecond, Seed: 42})
	for seq := uint64(0); seq < 16; seq++ {
		if d := fixed(0, 1, seq); d != max {
			t.Fatalf("fixed delay = %d, want %d", d, max)
		}
	}

	heavy := delayFn(Options{VirtualLatency: true, LatencyDist: LatencyHeavyTail, MaxLatency: time.Millisecond, Seed: 42})
	var over int
	for seq := uint64(0); seq < 4096; seq++ {
		d := heavy(0, 1, seq)
		if d > 8*max {
			t.Fatalf("heavy-tail delay %d exceeds the 8×MaxLatency cap", d)
		}
		if d > max {
			over++
		}
	}
	if over == 0 || over > 4096/4 {
		t.Errorf("heavy tail: %d of 4096 draws beyond MaxLatency, want a small but non-zero fraction", over)
	}

	// At MaxLatency == MaxInt64 the heavy-tail cap must stay inside the
	// exactly-convertible float range — an out-of-range float→uint64
	// conversion is implementation-defined and would break the
	// cross-machine determinism guarantee.
	extreme := delayFn(Options{VirtualLatency: true, LatencyDist: LatencyHeavyTail,
		MaxLatency: time.Duration(math.MaxInt64), Seed: 42})
	for seq := uint64(0); seq < 256; seq++ {
		d := extreme(0, 1, seq)
		if d > math.MaxInt64 {
			t.Fatalf("extreme heavy-tail delay %d exceeds the MaxInt64 saturation", d)
		}
		if d != extreme(0, 1, seq) {
			t.Fatalf("extreme heavy-tail draw not reproducible at seq %d", seq)
		}
	}

	// The 8×MaxLatency hard cap must hold even for sub-8-tick bounds,
	// where the octave scale clamps up to one tick.
	tiny := delayFn(Options{VirtualLatency: true, LatencyDist: LatencyHeavyTail,
		MaxLatency: 2, Seed: 42})
	for seq := uint64(0); seq < 4096; seq++ {
		if d := tiny(0, 1, seq); d > 16 {
			t.Fatalf("tiny-bound heavy-tail delay %d exceeds 8×MaxLatency = 16", d)
		}
	}

	mat := [][]time.Duration{{0, 10 * time.Microsecond}, {time.Millisecond, 0}}
	matFn := delayFn(Options{VirtualLatency: true, LatencyDist: LatencyMatrix, LatencyMatrix: mat, Seed: 42})
	for seq := uint64(0); seq < 1024; seq++ {
		if d := matFn(0, 1, seq); d > uint64(mat[0][1]) {
			t.Fatalf("matrix delay 0→1 = %d exceeds link bound %d", d, mat[0][1])
		}
		if d := matFn(1, 1, seq); d != 0 {
			t.Fatalf("zero matrix entry drew delay %d", d)
		}
	}
}

// TestVirtualLatencyDeliveryScheduleDeterministic drives a fan-out
// cascade from a single root message — every subsequent send happens
// inside a serialized delivery callback — and checks the delivery
// order is identical across three runs per engine and across engines:
// one seed, one totally ordered timeline.
func TestVirtualLatencyDeliveryScheduleDeterministic(t *testing.T) {
	const n, ttl = 4, 5
	runOnce := func(make func(int, Options) Transport) []string {
		nw := make(n, Options{FIFO: true, VirtualLatency: true, MaxLatency: time.Millisecond, Seed: 99})
		defer nw.Close()
		var mu sync.Mutex
		var order []string
		for i := 0; i < n; i++ {
			i := i
			nw.SetHandler(i, func(m Message) {
				mu.Lock()
				order = append(order, fmt.Sprintf("%d→%d/%d", m.From, i, m.Payload[0]))
				mu.Unlock()
				if m.Payload[0] > 0 {
					nw.Send(Message{From: i, To: (i + 1) % n, Payload: []byte{m.Payload[0] - 1}})
					nw.Send(Message{From: i, To: (i + 2) % n, Payload: []byte{m.Payload[0] - 1}})
				}
			})
		}
		nw.Send(Message{From: 0, To: 1, Payload: []byte{ttl}})
		nw.Quiesce()
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), order...)
	}
	var ref []string
	for _, eng := range virtualEngines {
		for rep := 0; rep < 3; rep++ {
			got := runOnce(eng.make)
			if len(got) != 1<<(ttl+1)-1 {
				t.Fatalf("%s rep %d: %d deliveries, want %d", eng.name, rep, len(got), 1<<(ttl+1)-1)
			}
			if ref == nil {
				ref = got
				continue
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("%s rep %d: delivery %d = %s, reference %s — schedule not deterministic",
						eng.name, rep, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestVirtualLatencyQuiesceWallTime is the regression test for the
// wall-clock hang this PR retires: with 50ms max latency in virtual
// mode, draining hundreds of messages must take microseconds of wall
// time, not multiples of 50ms.
func TestVirtualLatencyQuiesceWallTime(t *testing.T) {
	for _, eng := range virtualEngines {
		t.Run(eng.name, func(t *testing.T) {
			nw := eng.make(4, Options{FIFO: true, VirtualLatency: true, MaxLatency: 200 * time.Millisecond, Seed: 3})
			var count atomic.Int64
			for i := 0; i < 4; i++ {
				nw.SetHandler(i, func(Message) { count.Add(1) })
			}
			const msgs = 400
			for i := 0; i < msgs; i++ {
				nw.Send(Message{From: i % 4, To: (i + 1) % 4})
			}
			start := time.Now()
			nw.Quiesce()
			elapsed := time.Since(start)
			if got := count.Load(); got != msgs {
				t.Fatalf("quiesced with %d of %d delivered", got, msgs)
			}
			// Draining 100 messages per pair through real 0–200ms sleeps
			// would take many seconds; virtual draining typically takes
			// microseconds. The 1s bound discriminates cleanly while
			// staying insensitive to CI scheduler stalls.
			if elapsed > time.Second {
				t.Fatalf("Quiesce took %v wall time with 200ms virtual latency — real sleeps leaked back in", elapsed)
			}
			start = time.Now()
			nw.Close()
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("Close took %v wall time with 200ms virtual latency", elapsed)
			}
		})
	}
}

// TestVirtualLatencyPauseWithPendingDeadlines pauses a link after its
// messages already hold virtual delivery deadlines: the deadlines
// fire, the messages must park rather than deliver, and resume must
// redeliver them in order while the rest of the network kept moving.
func TestVirtualLatencyPauseWithPendingDeadlines(t *testing.T) {
	for _, eng := range virtualEngines {
		t.Run(eng.name, func(t *testing.T) {
			nw := eng.make(3, Options{FIFO: true, VirtualLatency: true, MaxLatency: 10 * time.Millisecond, Seed: 8})
			defer nw.Close()
			lc := nw.(LinkController)
			var mu sync.Mutex
			var toOne []int
			var toTwo atomic.Int64
			nw.SetHandler(0, func(Message) {})
			nw.SetHandler(1, func(m Message) {
				mu.Lock()
				toOne = append(toOne, int(m.Payload[0]))
				mu.Unlock()
			})
			nw.SetHandler(2, func(Message) { toTwo.Add(1) })

			lc.PauseLink(0, 1)
			const held = 12
			for i := 0; i < held; i++ {
				nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
			}
			// Traffic around the paused link drains in virtual time even
			// though the held messages' deadlines are earlier.
			for i := 0; i < 5; i++ {
				nw.Send(Message{From: 0, To: 2, Payload: []byte{0}})
			}
			deadline := time.Now().Add(2 * time.Second)
			for toTwo.Load() != 5 && !time.Now().After(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
			if got := toTwo.Load(); got != 5 {
				t.Fatalf("open link delivered %d of 5 while 0→1 paused", got)
			}
			mu.Lock()
			if len(toOne) != 0 {
				t.Fatalf("paused link delivered %d messages past pending deadlines", len(toOne))
			}
			mu.Unlock()
			if bl := nw.(BacklogInspector).PausedBacklog(); len(bl) != 1 || bl[0].Held != held {
				t.Fatalf("PausedBacklog = %v, want one link holding %d", bl, held)
			}

			lc.ResumeLink(0, 1)
			nw.Quiesce()
			mu.Lock()
			defer mu.Unlock()
			if len(toOne) != held {
				t.Fatalf("after resume: %d of %d delivered", len(toOne), held)
			}
			for i, s := range toOne {
				if s != i {
					t.Fatalf("after resume: position %d holds seq %d (order lost)", i, s)
				}
			}
		})
	}
}

// TestVirtualLatencyCloseWithPendingDeliveries closes while hundreds
// of deliveries still hold future deadlines: Close must deliver every
// one (they are system timers surviving the protocol-callback drop)
// without waiting out the virtual delays in wall time.
func TestVirtualLatencyCloseWithPendingDeliveries(t *testing.T) {
	for _, eng := range virtualEngines {
		t.Run(eng.name, func(t *testing.T) {
			nw := eng.make(4, Options{FIFO: true, VirtualLatency: true, MaxLatency: time.Second, Seed: 5})
			var count atomic.Int64
			for i := 0; i < 4; i++ {
				nw.SetHandler(i, func(Message) { count.Add(1) })
			}
			const msgs = 300
			for i := 0; i < msgs; i++ {
				nw.Send(Message{From: i % 4, To: (i + 3) % 4})
			}
			start := time.Now()
			nw.Close()
			if got := count.Load(); got != msgs {
				t.Fatalf("Close returned with %d of %d delivered", got, msgs)
			}
			// Real-sleep draining would pay ~0.5s per message per pair;
			// the generous bound only guards against that class.
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("Close took %v with 1s virtual latency pending", elapsed)
			}
		})
	}
}

// TestVirtualLatencyNonFIFOPausePanics pins that the FIFO-only
// PauseLink contract survives the virtual path: the loud panic must
// fire before the vlat branch on both engines (pause parking only
// exists for FIFO pairs).
func TestVirtualLatencyNonFIFOPausePanics(t *testing.T) {
	for _, eng := range virtualEngines {
		t.Run(eng.name, func(t *testing.T) {
			nw := eng.make(2, Options{FIFO: false, VirtualLatency: true})
			defer nw.Close()
			defer func() {
				if recover() == nil {
					t.Error("PauseLink on a non-FIFO virtual transport must panic")
				}
			}()
			nw.(LinkController).PauseLink(0, 1)
		})
	}
}

// TestVirtualLatencyNonFIFOReordersByDeadline checks that without the
// FIFO guarantee, virtual delivery order is deadline order — a
// short-delay message overtakes a long-delay one — and that the
// reordering itself is deterministic.
func TestVirtualLatencyNonFIFOReordersByDeadline(t *testing.T) {
	for _, eng := range virtualEngines {
		t.Run(eng.name, func(t *testing.T) {
			runOnce := func() []int {
				nw := eng.make(2, Options{FIFO: false, VirtualLatency: true, MaxLatency: time.Millisecond, Seed: 17})
				defer nw.Close()
				var mu sync.Mutex
				var order []int
				nw.SetHandler(0, func(Message) {})
				nw.SetHandler(1, func(m Message) {
					mu.Lock()
					order = append(order, int(m.Payload[0]))
					mu.Unlock()
				})
				for i := 0; i < 32; i++ {
					nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
				}
				nw.Quiesce()
				mu.Lock()
				defer mu.Unlock()
				return append([]int(nil), order...)
			}
			first := runOnce()
			inOrder := true
			for i, s := range first {
				if s != i {
					inOrder = false
					break
				}
			}
			if inOrder {
				t.Fatal("non-FIFO virtual delivery never reordered 32 uniform draws")
			}
			second := runOnce()
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("reordering not deterministic: position %d = %d then %d", i, first[i], second[i])
				}
			}
		})
	}
}

// TestVirtualLatencyDelayHistogram checks the metrics layer's delay
// accounting: one sample per message, fixed distribution pinned
// exactly, uniform bounded by MaxLatency.
func TestVirtualLatencyDelayHistogram(t *testing.T) {
	col := metrics.NewCollector()
	nw := NewNetwork(2, Options{FIFO: true, VirtualLatency: true, LatencyDist: LatencyFixed,
		MaxLatency: time.Millisecond, Seed: 2, Metrics: col})
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(Message) {})
	const msgs = 50
	for i := 0; i < msgs; i++ {
		nw.Send(Message{From: 0, To: 1, Kind: "upd"})
	}
	nw.Quiesce()
	nw.Close()
	d := col.Snapshot().Delay
	if d.Count != msgs {
		t.Fatalf("delay samples = %d, want %d", d.Count, msgs)
	}
	if want := float64(time.Millisecond); d.MeanTicks != want || d.MaxTicks != uint64(want) {
		t.Fatalf("fixed 1ms distribution recorded mean %.0f max %d, want %v", d.MeanTicks, d.MaxTicks, time.Millisecond)
	}
	if q := d.QuantileTicks(0.99); q < d.MaxTicks/2 || q > d.MaxTicks {
		t.Fatalf("p99 estimate %d implausible for fixed max %d", q, d.MaxTicks)
	}
}

// TestLatencyOptionValidation covers the hardened option checks: New
// reports descriptive errors instead of panicking, and the extreme
// MaxLatency values that used to panic the rng draw are handled.
func TestLatencyOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"negative-latency", Options{FIFO: true, MaxLatency: -time.Second}, "negative"},
		{"dist-without-virtual", Options{FIFO: true, LatencyDist: LatencyFixed}, "requires VirtualLatency"},
		{"matrix-without-virtual", Options{FIFO: true, LatencyMatrix: [][]time.Duration{{0}}}, "requires VirtualLatency"},
		{"unknown-dist", Options{FIFO: true, VirtualLatency: true, LatencyDist: "zipf"}, "unknown LatencyDist"},
		{"matrix-wrong-rows", Options{FIFO: true, VirtualLatency: true, LatencyDist: LatencyMatrix,
			LatencyMatrix: [][]time.Duration{{0, 0}}}, "rows"},
		{"matrix-wrong-cols", Options{FIFO: true, VirtualLatency: true, LatencyDist: LatencyMatrix,
			LatencyMatrix: [][]time.Duration{{0}, {0}}}, "entries"},
		{"matrix-negative", Options{FIFO: true, VirtualLatency: true, LatencyDist: LatencyMatrix,
			LatencyMatrix: [][]time.Duration{{0, -1}, {0, 0}}}, "negative"},
		{"matrix-with-uniform", Options{FIFO: true, VirtualLatency: true, LatencyDist: LatencyUniform,
			LatencyMatrix: [][]time.Duration{{0, 0}, {0, 0}}}, "only used by"},
		{"matrix-with-maxlatency", Options{FIFO: true, VirtualLatency: true, LatencyDist: LatencyMatrix,
			MaxLatency:    time.Millisecond,
			LatencyMatrix: [][]time.Duration{{0, 0}, {0, 0}}}, "unused"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, kind := range []string{KindClassic, KindSharded} {
				tr, err := New(kind, 2, tc.opts)
				if err == nil {
					tr.Close()
					t.Fatalf("%s: New accepted invalid options %+v", kind, tc.opts)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Errorf("%s: error %q does not mention %q", kind, err, tc.want)
				}
			}
		})
	}

	// MaxLatency == MaxInt64: the uniform draw must not panic in either
	// mode. The real-sleep draw is exercised directly (delivering would
	// sleep for centuries); the virtual mode runs end to end.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		if d := drawRealLatency(rng, time.Duration(math.MaxInt64)); d < 0 {
			t.Fatalf("drawRealLatency overflowed to %v", d)
		}
	}
	nw, err := New(KindClassic, 2, Options{FIFO: true, VirtualLatency: true, MaxLatency: time.Duration(math.MaxInt64), Seed: 1})
	if err != nil {
		t.Fatalf("virtual MaxInt64 latency rejected: %v", err)
	}
	var got atomic.Int64
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(Message) { got.Add(1) })
	for i := 0; i < 8; i++ {
		nw.Send(Message{From: 0, To: 1})
	}
	nw.Quiesce()
	nw.Close()
	if got.Load() != 8 {
		t.Fatalf("delivered %d of 8 at MaxInt64 virtual latency", got.Load())
	}
}
