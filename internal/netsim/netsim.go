// Package netsim simulates the asynchronous reliable message-passing
// system that the paper's memory consistency systems run on (§1, §2):
// a finite set of nodes exchanging messages over reliable channels.
//
// Channels are FIFO per ordered node pair by default (what the PRAM
// protocol of §5 requires); a non-FIFO mode delivers every message
// independently after a seeded random latency, exercising protocols —
// such as slow memory — that tolerate reordering. The network counts
// every message through a metrics.Collector and supports quiescence
// detection (wait until no message is in flight), which gives tests
// and experiments deterministic cut points.
//
// Every transport also carries a deterministic virtual-time Clock —
// logical ticks advanced per delivered message and jumped forward at
// idle points — that the protocol layer uses to schedule flush
// deadlines reproducibly; see clock.go.
//
// Simulated latency comes in two modes. The real-sleep mode
// (Options.MaxLatency alone) delays each delivery by a seeded uniform
// random wall-clock sleep. The virtual mode (Options.VirtualLatency)
// turns the same knob into virtual-time delivery deadlines on the
// clock: delays are drawn from a pluggable seeded distribution
// (Options.LatencyDist), deliveries run serialized on one totally
// ordered timeline shared with flush timers and idle jumps, and the
// seed fully determines the message trace on every engine — latency
// studies become deterministic and cost no wall time; see vlat.go.
//
// The reliable-channel assumption itself can be withdrawn: faults.go
// injects seeded per-message drop/duplication plus hard faults
// (directed link cuts, node crashes) behind the FaultController
// interface, and reliable.go layers sequence numbers, cumulative acks,
// and virtual-clock retransmission on top of any transport to win the
// assumption back — with abandonment surfaced through OnAbandon after
// a bounded retry budget, so a permanent partition yields an error,
// not a hang. Fault windows should be bounded in virtual time by
// scheduling the un-fault on the Clock (see the facade's CutLinkFor):
// a window driven from an application goroutine has no defined virtual
// length, because idle jumps cross retransmit deadlines at memory
// speed while the goroutine is descheduled.
package netsim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"partialdsm/internal/metrics"
)

// Message is one unit of communication between MCS processes. The
// payload is opaque to the network; the byte split and the variable
// list feed the metrics collector.
type Message struct {
	From, To int
	Kind     string // protocol message kind, for accounting
	Payload  []byte
	// CtrlBytes and DataBytes describe how the payload splits into
	// control information and variable data.
	CtrlBytes, DataBytes int
	// Vars lists the shared variables this message carries information
	// about (for the touch matrix).
	Vars []string
	// Epoch tags the frame with the sender's placement epoch. It is
	// transport metadata, not payload bytes — static clusters leave it 0
	// and their wire traffic is unchanged. During a reconfiguration the
	// protocols use it to tell straggler frames sent under an older
	// epoch apart from post-flip traffic (see mcs reconfig).
	Epoch uint64
	// SharedPayload marks Payload (and Vars) as shared across several
	// Sends — a multicast fanning one encoded frame out to its whole
	// destination set. Receivers must not mutate a shared buffer;
	// transports deliver it like any other payload.
	SharedPayload bool
	// SharedRefs, when non-nil on a SharedPayload message, counts the
	// multicast's outstanding deliveries. The receiver that decrements
	// it to zero becomes the payload's sole owner and may recycle the
	// buffer (mcs.RecycleFrame does). Transports never touch it.
	SharedRefs *atomic.Int32

	// dropped marks a message consumed by fault injection: it flows
	// through the normal delivery pipeline — in-flight accounting,
	// FIFO sequencing and virtual-time scheduling are identical — but
	// is discarded instead of reaching the destination handler.
	dropped bool
	// faultDrawn marks a message whose fault fate is already decided
	// (an injected duplicate), exempting it from further draws.
	faultDrawn bool
}

// Handler processes a delivered message. Handlers run on network
// goroutines and may call Send; they must be safe for concurrent use.
type Handler func(Message)

// Options configure a Network.
type Options struct {
	// FIFO preserves per-ordered-pair delivery order (default true via
	// NewNetwork; the zero Options value means non-FIFO).
	FIFO bool
	// MaxLatency bounds the simulated per-message delivery latency.
	// Without VirtualLatency each delivery really sleeps a uniform
	// random duration in [0, MaxLatency]; with it, MaxLatency scales
	// the virtual-time delay distribution instead (LatencyDist) and no
	// wall time is spent. Zero means deliver as fast as scheduling
	// allows. Negative values are rejected.
	MaxLatency time.Duration
	// Seed feeds the latency generator; same seed, same latencies. In
	// virtual mode the seed fully determines the delivery schedule —
	// and therefore the message trace — on every engine.
	Seed int64
	// VirtualLatency simulates MaxLatency as deterministic virtual-time
	// delivery deadlines on the transport clock instead of real sleeps:
	// each message's delay is derived from (Seed, src, dst, per-pair
	// sequence), deliveries run serialized on the clock's totally
	// ordered timeline, and Quiesce/Close drain via clock jumps in
	// microseconds of wall time. See vlat.go.
	VirtualLatency bool
	// LatencyDist selects the virtual-mode delay distribution; the
	// empty string means LatencyUniform. Requires VirtualLatency.
	LatencyDist LatencyDist
	// LatencyMatrix gives per-ordered-link maximum delays for the
	// LatencyMatrix distribution; must be NumNodes×NumNodes (zero
	// entries deliver with zero delay), with MaxLatency left zero.
	LatencyMatrix [][]time.Duration
	// Faults enables seeded probabilistic fault injection: per-message
	// drop and duplication drawn from hash(Faults.Seed, src, dst,
	// per-pair sequence), so one seed yields the same fault schedule
	// on every engine and every run. Nil injects nothing. Hard faults
	// (partitions, crashes) need no configuration — see
	// FaultController. See faults.go.
	Faults *FaultConfig
	// Metrics receives per-message accounting; nil disables accounting.
	// In virtual mode it also receives each message's delivery delay
	// (RecordDelay), making delay histograms measurable. With Faults it
	// also counts each injected fault by kind (RecordFault).
	Metrics *metrics.Collector
	// Workers sets the delivery worker-pool size for transports that
	// use one (Sharded). Zero picks max(2, GOMAXPROCS); the classic
	// Network ignores it.
	Workers int
}

// Network connects n nodes. Create with NewNetwork, install handlers
// with SetHandler, then exchange messages with Send. Close releases the
// delivery goroutines.
type Network struct {
	n    int
	opts Options

	clk         *vclock
	pairs       *pairWatch
	vlat        *vnet          // non-nil in virtual-latency mode; owns the delivery schedule
	faults      *faultInjector // always non-nil; cheap no-op without configured faults
	pausedLinks atomic.Int32   // links currently held by PauseLink
	inflightA   atomic.Int64   // lock-free mirror of inflight for the idle fast path

	mu       sync.Mutex
	rng      *rand.Rand //lint:allow seededrand real-latency jitter only (guarded by mu); virtual mode draws via PairDraw
	handlers []Handler
	queues   []*pairQueue // FIFO mode: one per ordered pair, lazily started
	inflight int
	quiet    *sync.Cond
	closed   bool
	wg       sync.WaitGroup
}

// pairQueue is an unbounded FIFO queue served by one goroutine. The
// latencies slice parallels items: each message carries the delivery
// latency drawn for it at send time. A paused queue holds its messages
// until resumed.
type pairQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	items     []Message
	latencies []time.Duration
	paused    bool
	closed    bool
}

// NewNetwork returns a network of n nodes with FIFO per-pair channels
// and the given options. Handlers must be installed with SetHandler
// before any message addressed to the node is sent.
func NewNetwork(n int, opts Options) *Network {
	if n <= 0 {
		panic(fmt.Sprintf("netsim: network needs at least one node, got %d", n))
	}
	if err := opts.validate(n); err != nil {
		panic("netsim: " + err.Error())
	}
	nw := &Network{
		n:        n,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		handlers: make([]Handler, n),
		pairs:    newPairWatch(n),
		faults:   newFaultInjector(n, opts),
	}
	stalled := nw.idle
	if opts.VirtualLatency {
		nw.vlat = newVNet(n, opts)
		stalled = func() bool { return nw.inflightA.Load() == nw.vlat.parkedCount() }
	}
	nw.clk = newVClock(nw.idle, stalled, func() bool { return nw.pausedLinks.Load() > 0 }, nw.pairs)
	nw.quiet = sync.NewCond(&nw.mu)
	if nw.vlat != nil {
		nw.vlat.clk = nw.clk
		nw.vlat.deliver = nw.deliver
		nw.vlat.start()
	} else if opts.FIFO {
		nw.queues = make([]*pairQueue, n*n)
	}
	return nw
}

// NumNodes returns the number of nodes.
func (nw *Network) NumNodes() int { return nw.n }

// Clock returns the network's virtual-time clock.
func (nw *Network) Clock() Clock { return nw.clk }

// InboundIdle reports whether no message is in flight to `to`
// (PairMonitor).
func (nw *Network) InboundIdle(to int) bool { return nw.pairs.InboundIdle(to) }

// OnInboundIdle registers a one-shot hook for when inbound traffic to
// `to` next drains (PairMonitor).
func (nw *Network) OnInboundIdle(to int, fn func()) { nw.pairs.OnInboundIdle(to, fn) }

// idle reports whether no message can still make progress — the
// clock's idleness probe. Messages held on paused links do not count:
// a paused link models an arbitrarily slow channel, and virtual time
// must keep advancing for the rest of the network while it is held
// (the deterministic-asynchrony experiments pause a link and then poll
// for traffic that flows around it). The busy case answers from the
// lock-free in-flight mirror; the walk touches the per-pair queues
// only when something is in flight while a link is paused.
func (nw *Network) idle() bool {
	if nw.vlat != nil {
		// Virtual mode: a message counts as idle-able while it sits in
		// the clock (a jump delivers it) or parked behind a paused pair.
		return nw.inflightA.Load() == nw.vlat.pending()
	}
	if nw.inflightA.Load() != 0 && nw.pausedLinks.Load() == 0 {
		return false // definitely busy: messages in flight, none of them held
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.inflight == 0 {
		return true
	}
	if nw.pausedLinks.Load() == 0 {
		return false
	}
	held := 0
	for _, q := range nw.queues {
		if q == nil {
			continue
		}
		q.mu.Lock()
		if q.paused {
			held += len(q.items)
		}
		q.mu.Unlock()
	}
	return nw.inflight == held
}

// SetHandler installs the delivery handler for a node. It must be
// called before any message is sent to the node and must not be called
// concurrently with Send.
func (nw *Network) SetHandler(node int, h Handler) {
	if node < 0 || node >= nw.n {
		panic(fmt.Sprintf("netsim: node %d out of range [0,%d)", node, nw.n))
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	nw.handlers[node] = h
}

// Send enqueues a message for asynchronous delivery. It never blocks on
// the receiver. Sending to an unknown node or on a closed network
// panics (a programming error in the protocol layer).
func (nw *Network) Send(msg Message) {
	if dup := nw.faults.inject(&msg); dup != nil {
		nw.send1(msg)
		nw.send1(*dup)
		return
	}
	nw.send1(msg)
}

// send1 enqueues one (possibly fault-marked) message.
func (nw *Network) send1(msg Message) {
	if msg.To < 0 || msg.To >= nw.n || msg.From < 0 || msg.From >= nw.n {
		panic(fmt.Sprintf("netsim: message endpoints %d→%d out of range", msg.From, msg.To))
	}
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		panic("netsim: send on closed network")
	}
	if nw.handlers[msg.To] == nil {
		nw.mu.Unlock()
		panic(fmt.Sprintf("netsim: node %d has no handler installed", msg.To))
	}
	nw.inflight++
	nw.inflightA.Add(1)
	nw.pairs.sent(msg.To)
	var latency time.Duration
	if nw.vlat == nil && nw.opts.MaxLatency > 0 {
		latency = drawRealLatency(nw.rng, nw.opts.MaxLatency)
	}
	if nw.opts.Metrics != nil {
		nw.opts.Metrics.RecordMessage(msg.Kind, msg.From, msg.To, msg.CtrlBytes, msg.DataBytes, msg.Vars)
	}
	if nw.vlat != nil {
		nw.mu.Unlock()
		nw.vlat.send(msg)
		return
	}
	if !nw.opts.FIFO {
		nw.mu.Unlock()
		nw.wg.Add(1)
		go func() {
			defer nw.wg.Done()
			if latency > 0 {
				time.Sleep(latency) //lint:allow realtime real-latency engine: latency IS wall-clock sleep here
			}
			nw.deliver(msg)
		}()
		return
	}
	q := nw.pairQueueLocked(msg.From, msg.To)
	nw.mu.Unlock()
	// The per-pair latency is applied by the queue goroutine before the
	// handler runs, preserving FIFO order on the pair.
	q.push(msg, latency)
}

func (nw *Network) pairQueueLocked(from, to int) *pairQueue {
	idx := from*nw.n + to
	if q := nw.queues[idx]; q != nil {
		return q
	}
	q := &pairQueue{}
	q.cond = sync.NewCond(&q.mu)
	nw.queues[idx] = q
	nw.wg.Add(1)
	go nw.servePair(q)
	return q
}

func (q *pairQueue) push(msg Message, latency time.Duration) {
	q.mu.Lock()
	q.items = append(q.items, msg)
	q.latencies = append(q.latencies, latency)
	q.cond.Signal()
	q.mu.Unlock()
}

func (nw *Network) servePair(q *pairQueue) {
	defer nw.wg.Done()
	for {
		q.mu.Lock()
		for (len(q.items) == 0 || q.paused) && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		msg := q.items[0]
		latency := q.latencies[0]
		q.items = q.items[1:]
		q.latencies = q.latencies[1:]
		q.mu.Unlock()
		if latency > 0 {
			time.Sleep(latency) //lint:allow realtime real-latency engine: FIFO pair queue sleeps wall-clock by design
		}
		nw.deliver(msg)
	}
}

// deliver runs the destination handler, advances virtual time by one
// tick, and settles in-flight accounting; the delivery that empties the
// network gives the clock an idle-advance opportunity. A fault-dropped
// message — or one whose destination crashed while it was in flight —
// skips only the handler call: its accounting is identical, so lossy
// runs quiesce exactly like lossless ones.
func (nw *Network) deliver(msg Message) {
	if nw.faults.deliverable(&msg) {
		nw.mu.Lock()
		h := nw.handlers[msg.To]
		nw.mu.Unlock()
		if h != nil {
			h(msg)
		}
	}
	// Pair hooks and due timers fire while this message still counts as
	// in flight, so their sends cannot race a spurious idle point.
	if nw.pairs.delivered(msg.To) {
		nw.clk.requestPairHooks()
	}
	nw.clk.tick()
	nw.mu.Lock()
	nw.inflight--
	nw.inflightA.Add(-1)
	idle := nw.inflight == 0
	if idle {
		nw.quiet.Broadcast()
	}
	nw.mu.Unlock()
	if idle {
		nw.clk.AdvanceIdle()
	}
}

// PauseLink holds back delivery on the ordered link from → to:
// messages sent on it queue up but are not delivered until ResumeLink.
// Only supported on FIFO networks (the asynchronous model allows
// arbitrary finite delays, so pausing preserves protocol correctness
// while making adversarial schedules deterministic in tests and
// experiments). Quiesce blocks while paused messages are pending;
// Close resumes every paused link first.
func (nw *Network) PauseLink(from, to int) {
	if !nw.opts.FIFO {
		panic("netsim: PauseLink requires a FIFO network")
	}
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		panic(fmt.Sprintf("netsim: link %d→%d out of range", from, to))
	}
	if nw.vlat != nil {
		if nw.vlat.pause(from, to) {
			nw.pausedLinks.Add(1)
		}
		return
	}
	nw.mu.Lock()
	q := nw.pairQueueLocked(from, to)
	nw.mu.Unlock()
	q.mu.Lock()
	if !q.paused {
		q.paused = true
		nw.pausedLinks.Add(1)
	}
	q.mu.Unlock()
}

// ResumeLink releases a link paused by PauseLink; held messages are
// delivered in order.
func (nw *Network) ResumeLink(from, to int) {
	if !nw.opts.FIFO {
		panic("netsim: ResumeLink requires a FIFO network")
	}
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		panic(fmt.Sprintf("netsim: link %d→%d out of range", from, to))
	}
	if nw.vlat != nil {
		if nw.vlat.resume(from, to) {
			nw.pausedLinks.Add(-1)
		}
		return
	}
	nw.mu.Lock()
	q := nw.pairQueueLocked(from, to)
	nw.mu.Unlock()
	q.mu.Lock()
	if q.paused {
		q.paused = false
		nw.pausedLinks.Add(-1)
	}
	q.cond.Signal()
	q.mu.Unlock()
	// Released messages may satisfy pending deadlines' idle condition
	// only after they drain; the deliveries themselves re-advance the
	// clock, so nothing to do here.
}

// CutLink severs the ordered link from → to: messages sent on it are
// lost, not parked (FaultController).
func (nw *Network) CutLink(from, to int) {
	nw.faults.checkLink(from, to)
	nw.faults.cutLink(from, to)
}

// HealLink restores a link severed by CutLink (FaultController).
func (nw *Network) HealLink(from, to int) {
	nw.faults.checkLink(from, to)
	nw.faults.healLink(from, to)
}

// Crash takes a node off the network: messages from it, to it, and in
// flight toward it are lost (FaultController).
func (nw *Network) Crash(node int) {
	nw.faults.checkNode(node)
	nw.faults.crash(node)
}

// Restart reconnects a crashed node (FaultController).
func (nw *Network) Restart(node int) {
	nw.faults.checkNode(node)
	nw.faults.restart(node)
}

// PausedBacklog lists every paused link currently holding messages
// (BacklogInspector).
func (nw *Network) PausedBacklog() []PausedLink {
	if nw.pausedLinks.Load() == 0 {
		return nil
	}
	if nw.vlat != nil {
		return nw.vlat.pausedBacklog()
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	var out []PausedLink
	for idx, q := range nw.queues {
		if q == nil {
			continue
		}
		q.mu.Lock()
		if q.paused && len(q.items) > 0 {
			out = append(out, PausedLink{From: idx / nw.n, To: idx % nw.n, Held: len(q.items)})
		}
		q.mu.Unlock()
	}
	return out
}

// Quiesce blocks until no message is in flight and no virtual-time
// callback is pending: every sent message has been delivered and its
// handler has returned, including messages sent by handlers and by
// clock callbacks, which Quiesce runs (advancing virtual time as far
// as needed). Application goroutines must be idle for the result to be
// a global cut.
func (nw *Network) Quiesce() {
	for {
		nw.mu.Lock()
		for nw.inflight != 0 {
			nw.quiet.Wait()
		}
		nw.mu.Unlock()
		nw.clk.advanceWait()
		nw.mu.Lock()
		done := nw.inflight == 0 && !nw.clk.pendingWork()
		nw.mu.Unlock()
		if done {
			return
		}
	}
}

// Close drains the network and stops the delivery goroutines. Messages
// already sent are still delivered; pending clock callbacks and pair
// hooks are cancelled first, then paused links are resumed. Send after
// Close panics.
func (nw *Network) Close() {
	nw.clk.drop()
	if nw.vlat != nil {
		// Virtual mode: deliveries are system timers that survived drop;
		// release paused pairs and drain everything through the clock.
		nw.vlat.resumeAll(&nw.pausedLinks)
		nw.Quiesce()
		nw.mu.Lock()
		if nw.closed {
			nw.mu.Unlock()
			return
		}
		nw.closed = true
		nw.mu.Unlock()
		// A send that passed the closed check before the flag flipped
		// has already incremented inflight (under nw.mu), so one more
		// drain delivers any such straggler before the pump stops.
		nw.Quiesce()
		// No queue goroutines exist in virtual mode (nw.wg is never
		// used); the pump is the only delivery goroutine and stopPump
		// joins it.
		nw.vlat.stopPump()
		return
	}
	nw.mu.Lock()
	queuesSnapshot := append([]*pairQueue(nil), nw.queues...)
	nw.mu.Unlock()
	for _, q := range queuesSnapshot {
		if q == nil {
			continue
		}
		q.mu.Lock()
		if q.paused {
			q.paused = false
			nw.pausedLinks.Add(-1)
			q.cond.Signal()
		}
		q.mu.Unlock()
	}
	nw.Quiesce()
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return
	}
	nw.closed = true
	queues := nw.queues
	nw.mu.Unlock()
	for _, q := range queues {
		if q == nil {
			continue
		}
		q.mu.Lock()
		q.closed = true
		q.cond.Signal()
		q.mu.Unlock()
	}
	nw.wg.Wait()
}
