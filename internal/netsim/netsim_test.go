package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partialdsm/internal/metrics"
)

func TestFIFOPerPair(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: true, MaxLatency: 100 * time.Microsecond, Seed: 42})
	defer nw.Close()
	var mu sync.Mutex
	var got []byte
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload[0])
		mu.Unlock()
	})
	const n = 200
	for i := 0; i < n; i++ {
		nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
	}
	nw.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("position %d: got %d, want %d (FIFO violated)", i, got[i], i)
		}
	}
}

func TestNonFIFODeliversAll(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: false, MaxLatency: 200 * time.Microsecond, Seed: 7})
	defer nw.Close()
	var count int64
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(m Message) { atomic.AddInt64(&count, 1) })
	const n = 300
	for i := 0; i < n; i++ {
		nw.Send(Message{From: 0, To: 1, Payload: []byte{byte(i)}})
	}
	nw.Quiesce()
	if got := atomic.LoadInt64(&count); got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
}

func TestQuiesceWaitsForHandlerCascade(t *testing.T) {
	// Node 0 pings node 1 which pings back twice; Quiesce must wait for
	// the whole cascade.
	nw := NewNetwork(2, Options{FIFO: true})
	defer nw.Close()
	var count int64
	nw.SetHandler(0, func(m Message) { atomic.AddInt64(&count, 1) })
	nw.SetHandler(1, func(m Message) {
		nw.Send(Message{From: 1, To: 0})
		nw.Send(Message{From: 1, To: 0})
	})
	nw.Send(Message{From: 0, To: 1})
	nw.Quiesce()
	if got := atomic.LoadInt64(&count); got != 2 {
		t.Fatalf("cascade incomplete at Quiesce: %d of 2 pongs", got)
	}
}

func TestMetricsAccounting(t *testing.T) {
	col := metrics.NewCollector()
	nw := NewNetwork(2, Options{FIFO: true, Metrics: col})
	defer nw.Close()
	nw.SetHandler(0, func(Message) {})
	nw.SetHandler(1, func(Message) {})
	nw.Send(Message{From: 0, To: 1, Kind: "upd", CtrlBytes: 10, DataBytes: 8, Vars: []string{"x"}})
	nw.Send(Message{From: 1, To: 0, Kind: "ntf", CtrlBytes: 4, Vars: []string{"y"}})
	nw.Quiesce()
	s := col.Snapshot()
	if s.Msgs != 2 || s.CtrlBytes != 14 || s.DataBytes != 8 {
		t.Fatalf("stats = %+v", s)
	}
	if s.PerKind["upd"] != 1 || s.PerKind["ntf"] != 1 {
		t.Fatalf("per-kind = %v", s.PerKind)
	}
	if !col.Touched(0, "x") || !col.Touched(1, "x") || !col.Touched(0, "y") {
		t.Error("touch matrix incomplete")
	}
	if col.Touched(0, "z") {
		t.Error("phantom touch")
	}
}

func TestSendPanicsAfterClose(t *testing.T) {
	nw := NewNetwork(1, Options{FIFO: true})
	nw.SetHandler(0, func(Message) {})
	nw.Close()
	defer func() {
		if recover() == nil {
			t.Error("send on closed network must panic")
		}
	}()
	nw.Send(Message{From: 0, To: 0})
}

func TestSendPanicsWithoutHandler(t *testing.T) {
	nw := NewNetwork(2, Options{FIFO: true})
	defer nw.Close()
	nw.SetHandler(0, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Error("send to handler-less node must panic")
		}
	}()
	nw.Send(Message{From: 0, To: 1})
}

func TestSendPanicsOutOfRange(t *testing.T) {
	nw := NewNetwork(1, Options{FIFO: true})
	defer nw.Close()
	nw.SetHandler(0, func(Message) {})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range destination must panic")
		}
	}()
	nw.Send(Message{From: 0, To: 5})
}

func TestCloseIdempotent(t *testing.T) {
	nw := NewNetwork(1, Options{FIFO: true})
	nw.SetHandler(0, func(Message) {})
	nw.Close()
	nw.Close() // must not panic or deadlock
}

func TestManyNodesCrossTraffic(t *testing.T) {
	const n = 8
	col := metrics.NewCollector()
	nw := NewNetwork(n, Options{FIFO: true, MaxLatency: 50 * time.Microsecond, Seed: 1, Metrics: col})
	defer nw.Close()
	var count int64
	for i := 0; i < n; i++ {
		nw.SetHandler(i, func(Message) { atomic.AddInt64(&count, 1) })
	}
	var wg sync.WaitGroup
	for from := 0; from < n; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for to := 0; to < n; to++ {
				for k := 0; k < 10; k++ {
					nw.Send(Message{From: from, To: to})
				}
			}
		}(from)
	}
	wg.Wait()
	nw.Quiesce()
	if got := atomic.LoadInt64(&count); got != n*n*10 {
		t.Fatalf("delivered %d of %d", got, n*n*10)
	}
	if s := col.Snapshot(); s.Msgs != n*n*10 {
		t.Fatalf("metrics counted %d messages", s.Msgs)
	}
}
