package check

import (
	"fmt"
	"sync"

	"partialdsm/internal/model"
)

// Monitor is an online (incremental) witness validator: protocol events
// are fed as they happen and the first consistency violation is
// reported immediately, with O(1) work per event. Monitors implement
// runtime verification for long-running systems where post-hoc trace
// checking is impractical.
//
// Monitors exist for the criteria whose witnesses are naturally
// prefix-closed: PRAM, slow memory and cache consistency. (The causal
// witness needs the global history and is checked post-hoc.)
type Monitor interface {
	// Feed records one event observed at a node. It returns a non-nil
	// error on the first event that violates the criterion; subsequent
	// calls keep returning the same error.
	Feed(node int, e Event) error
	// Err returns the first recorded violation, nil if none.
	Err() error
}

// monitorBase carries the shared sticky-error machinery.
type monitorBase struct {
	mu  sync.Mutex
	err error
}

func (m *monitorBase) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// failf records the sticky violation. Callers must hold m.mu.
func (m *monitorBase) failf(format string, args ...any) error {
	if m.err == nil {
		m.err = fmt.Errorf(format, args...)
	}
	return m.err
}

// PRAMMonitor validates the PRAM witness online: per-(node, sender)
// strictly increasing write sequence numbers and read-latest per node.
type PRAMMonitor struct {
	monitorBase
	numProcs int
	lastSeq  [][]int                  // [node][writer] last applied WSeq
	cur      []map[string]model.Value // [node] replica view
}

// NewPRAMMonitor returns an online PRAM witness for numProcs nodes.
func NewPRAMMonitor(numProcs int) *PRAMMonitor {
	m := &PRAMMonitor{
		numProcs: numProcs,
		lastSeq:  make([][]int, numProcs),
		cur:      make([]map[string]model.Value, numProcs),
	}
	for i := 0; i < numProcs; i++ {
		m.lastSeq[i] = make([]int, numProcs)
		for j := range m.lastSeq[i] {
			m.lastSeq[i][j] = -1
		}
		m.cur[i] = make(map[string]model.Value)
	}
	return m
}

// Feed implements Monitor.
func (m *PRAMMonitor) Feed(node int, e Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if node < 0 || node >= m.numProcs {
		return m.failf("check: monitor: node %d out of range", node)
	}
	if e.IsRead {
		want, ok := m.cur[node][e.Var]
		if !ok {
			want = model.Bottom
		}
		if e.Val != want {
			return m.failf("check: node %d: %v returned %v, last applied write is %v", node, e, e.Val, want)
		}
		return nil
	}
	if e.IsMigrate {
		// Migrated values seed the replica view only; the per-sender
		// frontiers stay put (see the check.Event doc).
		if e.Writer >= m.numProcs {
			return m.failf("check: node %d: writer %d out of range", node, e.Writer)
		}
		m.cur[node][e.Var] = e.Val
		return nil
	}
	if e.IsRecover {
		if e.Writer >= m.numProcs {
			return m.failf("check: node %d: writer %d out of range", node, e.Writer)
		}
		if e.Writer >= 0 && e.WSeq > m.lastSeq[node][e.Writer] {
			m.lastSeq[node][e.Writer] = e.WSeq
		}
		m.cur[node][e.Var] = e.Val
		return nil
	}
	if e.Writer < 0 || e.Writer >= m.numProcs {
		return m.failf("check: node %d: writer %d out of range", node, e.Writer)
	}
	if e.WSeq <= m.lastSeq[node][e.Writer] {
		return m.failf("check: node %d: %v applied out of sender order (last applied #%d)",
			node, e, m.lastSeq[node][e.Writer])
	}
	m.lastSeq[node][e.Writer] = e.WSeq
	m.cur[node][e.Var] = e.Val
	return nil
}

// SlowMonitor validates the slow-memory witness online: per-(node,
// sender, variable) increasing sequence numbers and read-latest.
type SlowMonitor struct {
	monitorBase
	numProcs int
	lastSeq  []map[senderVar]int
	cur      []map[string]model.Value
}

type senderVar struct {
	sender int
	v      string
}

// NewSlowMonitor returns an online slow-memory witness.
func NewSlowMonitor(numProcs int) *SlowMonitor {
	m := &SlowMonitor{
		numProcs: numProcs,
		lastSeq:  make([]map[senderVar]int, numProcs),
		cur:      make([]map[string]model.Value, numProcs),
	}
	for i := 0; i < numProcs; i++ {
		m.lastSeq[i] = make(map[senderVar]int)
		m.cur[i] = make(map[string]model.Value)
	}
	return m
}

// Feed implements Monitor.
func (m *SlowMonitor) Feed(node int, e Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if node < 0 || node >= m.numProcs {
		return m.failf("check: monitor: node %d out of range", node)
	}
	if e.IsRead {
		want, ok := m.cur[node][e.Var]
		if !ok {
			want = model.Bottom
		}
		if e.Val != want {
			return m.failf("check: node %d: %v returned %v, last applied write is %v", node, e, e.Val, want)
		}
		return nil
	}
	key := senderVar{e.Writer, e.Var}
	if e.IsRecover || e.IsMigrate {
		// Slow memory orders per (sender, variable): adopting the
		// newest write of exactly this variable may raise the pair's
		// frontier in both cases.
		if e.Writer >= 0 {
			if last, seen := m.lastSeq[node][key]; !seen || e.WSeq > last {
				m.lastSeq[node][key] = e.WSeq
			}
		}
		m.cur[node][e.Var] = e.Val
		return nil
	}
	if last, seen := m.lastSeq[node][key]; seen && e.WSeq <= last {
		return m.failf("check: node %d: %v applied out of per-variable sender order (last #%d)", node, e, last)
	}
	m.lastSeq[node][key] = e.WSeq
	m.cur[node][e.Var] = e.Val
	return nil
}

// CacheMonitor validates the cache-consistency witness online: all
// nodes must apply each variable's writes in one global order. The
// monitor maintains, per variable, the longest apply sequence seen so
// far; every node's sequence must follow it (extending it when the
// node runs ahead).
//
// A recovery event switches the (node, variable) pair from exact
// prefix alignment to re-anchored tracking: the node's position jumps
// to just past the recovered write, and subsequent applies must land
// on strictly advancing positions of the global order — the writes the
// crashed node slept through are a legitimate gap, but order
// inversions remain violations.
type CacheMonitor struct {
	monitorBase
	numProcs int
	global   map[string][]writeID       // per variable: longest observed apply order
	index    map[string]map[writeID]int // per variable: position of each sequenced write
	pos      []map[string]int           // [node][var] next aligned position / re-anchored floor
	floating []map[string]bool          // [node][var] re-anchored by a recovery event
	cur      []map[string]model.Value
	lastSeq  map[string]map[int]int // per variable, per writer: last sequenced WSeq
}

type writeID struct {
	writer, wseq int
	val          model.Value
}

// NewCacheMonitor returns an online cache-consistency witness.
func NewCacheMonitor(numProcs int) *CacheMonitor {
	m := &CacheMonitor{
		numProcs: numProcs,
		global:   make(map[string][]writeID),
		index:    make(map[string]map[writeID]int),
		pos:      make([]map[string]int, numProcs),
		floating: make([]map[string]bool, numProcs),
		cur:      make([]map[string]model.Value, numProcs),
		lastSeq:  make(map[string]map[int]int),
	}
	for i := 0; i < numProcs; i++ {
		m.pos[i] = make(map[string]int)
		m.floating[i] = make(map[string]bool)
		m.cur[i] = make(map[string]model.Value)
	}
	return m
}

// extend appends w to x's global apply order, enforcing the per-writer
// program order within the variable. Callers hold m.mu.
func (m *CacheMonitor) extend(x string, w writeID) (int, error) {
	if m.lastSeq[x] == nil {
		m.lastSeq[x] = make(map[int]int)
	}
	if last, seen := m.lastSeq[x][w.writer]; seen && w.wseq <= last {
		return 0, m.failf("check: variable %s: writer %d sequenced out of program order (#%d after #%d)",
			x, w.writer, w.wseq, last)
	}
	m.lastSeq[x][w.writer] = w.wseq
	if m.index[x] == nil {
		m.index[x] = make(map[writeID]int)
	}
	q := len(m.global[x])
	m.global[x] = append(m.global[x], w)
	m.index[x][w] = q
	return q, nil
}

// Sequenced reports whether the write (writer, wseq, val) already
// holds a position in x's global apply order. The offline witness uses
// it to schedule its replay: a node parking at a recovery or migration
// anchor resumes once the anchored write has been sequenced by some
// other node's events.
func (m *CacheMonitor) Sequenced(x string, writer, wseq int, val model.Value) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, known := m.index[x][writeID{writer, wseq, val}]
	return known
}

// Feed implements Monitor.
func (m *CacheMonitor) Feed(node int, e Event) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if node < 0 || node >= m.numProcs {
		return m.failf("check: monitor: node %d out of range", node)
	}
	if e.IsRead {
		want, ok := m.cur[node][e.Var]
		if !ok {
			want = model.Bottom
		}
		if e.Val != want {
			return m.failf("check: node %d: %v returned %v, last applied write is %v", node, e, e.Val, want)
		}
		return nil
	}
	if e.IsRecover || e.IsMigrate {
		m.cur[node][e.Var] = e.Val
		m.floating[node][e.Var] = true
		if e.Writer < 0 {
			// ⊥ reset: no anchor — the node may re-observe the
			// variable's order from anywhere onward.
			m.pos[node][e.Var] = 0
			return nil
		}
		w := writeID{e.Writer, e.WSeq, e.Val}
		q, known := m.index[e.Var][w]
		if !known {
			// The recovered write was sequenced but its apply not yet
			// observed here (it completed through recovery): enter it.
			var err error
			if q, err = m.extend(e.Var, w); err != nil {
				return err
			}
		}
		m.pos[node][e.Var] = q + 1
		return nil
	}
	w := writeID{e.Writer, e.WSeq, e.Val}
	if m.floating[node][e.Var] {
		q, known := m.index[e.Var][w]
		if !known {
			var err error
			if q, err = m.extend(e.Var, w); err != nil {
				return err
			}
		}
		if q < m.pos[node][e.Var] {
			return m.failf("check: node %d: variable %s apply order went backward after recovery (%v at position %d, floor %d)",
				node, e.Var, w, q, m.pos[node][e.Var])
		}
		m.pos[node][e.Var] = q + 1
		m.cur[node][e.Var] = e.Val
		return nil
	}
	seq := m.global[e.Var]
	p := m.pos[node][e.Var]
	switch {
	case p < len(seq):
		if seq[p] != w {
			return m.failf("check: node %d: variable %s apply order diverges at position %d: %v vs %v",
				node, e.Var, p, w, seq[p])
		}
	default:
		// The node runs ahead: extend the global order, checking the
		// per-writer program order within the variable.
		if _, err := m.extend(e.Var, w); err != nil {
			return err
		}
	}
	m.pos[node][e.Var] = p + 1
	m.cur[node][e.Var] = e.Val
	return nil
}

var (
	_ Monitor = (*PRAMMonitor)(nil)
	_ Monitor = (*SlowMonitor)(nil)
	_ Monitor = (*CacheMonitor)(nil)
)
