package check

import (
	"testing"

	"partialdsm/internal/model"
)

func primAt(p int) func(string) int { return func(string) int { return p } }

func TestWitnessAtomicAccepts(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(1, 0, "x", 2), r("x", 2)}, // primary applies both, reads latest
		{r("x", 1), r("x", 2)},                        // observes positions 0 then 1
	}
	if err := WitnessAtomic(2, logs, primAt(0)); err != nil {
		t.Fatalf("valid atomic logs rejected: %v", err)
	}
}

func TestWitnessAtomicRejectsBackwardRead(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(1, 0, "x", 2)},
		{r("x", 2), r("x", 1)}, // register goes backward
	}
	if err := WitnessAtomic(2, logs, primAt(0)); err == nil {
		t.Fatal("backward observation not detected")
	}
}

func TestWitnessAtomicRejectsApplyAwayFromPrimary(t *testing.T) {
	logs := [][]Event{
		{},
		{w(1, 0, "x", 1)}, // applied at node 1 but primary is 0
	}
	if err := WitnessAtomic(2, logs, primAt(0)); err == nil {
		t.Fatal("apply away from primary not detected")
	}
}

func TestWitnessAtomicRejectsPhantomValue(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1)},
		{r("x", 99)},
	}
	if err := WitnessAtomic(2, logs, primAt(0)); err == nil {
		t.Fatal("phantom value not detected")
	}
}

func TestWitnessAtomicRejectsLateBottom(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1)},
		{r("x", 1), r("x", model.BottomInt64)},
	}
	if err := WitnessAtomic(2, logs, primAt(0)); err == nil {
		t.Fatal("⊥ after observing a written value not detected")
	}
}

func TestWitnessAtomicRejectsDuplicateApply(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "x", 1)},
	}
	if err := WitnessAtomic(1, logs, primAt(0)); err == nil {
		t.Fatal("duplicate applied value not detected")
	}
}

func TestWitnessAtomicShape(t *testing.T) {
	if err := WitnessAtomic(2, nil, primAt(0)); err == nil {
		t.Fatal("log count mismatch not detected")
	}
	// Early ⊥-reads are fine.
	logs := [][]Event{{r("x", model.BottomInt64)}}
	if err := WitnessAtomic(1, logs, primAt(0)); err != nil {
		t.Fatalf("initial ⊥ read rejected: %v", err)
	}
}
