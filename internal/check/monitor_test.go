package check

import (
	"strings"
	"sync"
	"testing"

	"partialdsm/internal/model"
)

func TestPRAMMonitorAcceptsValidStream(t *testing.T) {
	m := NewPRAMMonitor(2)
	events := []struct {
		node int
		e    Event
	}{
		{0, w(0, 0, "x", 1)},
		{0, r("x", 1)},
		{1, w(0, 0, "x", 1)},
		{1, w(1, 0, "y", 2)},
		{1, r("y", 2)},
	}
	for _, ev := range events {
		if err := m.Feed(ev.node, ev.e); err != nil {
			t.Fatalf("valid event rejected: %v", err)
		}
	}
	if m.Err() != nil {
		t.Fatal("spurious error")
	}
}

func TestPRAMMonitorDetectsSenderOrderViolation(t *testing.T) {
	m := NewPRAMMonitor(2)
	if err := m.Feed(1, w(0, 1, "x", 2)); err != nil {
		t.Fatal(err)
	}
	err := m.Feed(1, w(0, 0, "x", 1))
	if err == nil || !strings.Contains(err.Error(), "sender order") {
		t.Fatalf("violation not detected: %v", err)
	}
	// Sticky.
	if err2 := m.Feed(0, r("x", model.BottomInt64)); err2 != err {
		t.Error("error must be sticky")
	}
	if m.Err() != err {
		t.Error("Err must return the first violation")
	}
}

func TestPRAMMonitorDetectsStaleRead(t *testing.T) {
	m := NewPRAMMonitor(1)
	m.Feed(0, w(0, 0, "x", 1))
	if err := m.Feed(0, r("x", 99)); err == nil {
		t.Fatal("stale read not detected")
	}
}

func TestPRAMMonitorBounds(t *testing.T) {
	m := NewPRAMMonitor(1)
	if err := m.Feed(5, r("x", model.BottomInt64)); err == nil {
		t.Fatal("node out of range not detected")
	}
	m2 := NewPRAMMonitor(1)
	if err := m2.Feed(0, w(7, 0, "x", 1)); err == nil {
		t.Fatal("writer out of range not detected")
	}
}

func TestSlowMonitorPerVariableOrder(t *testing.T) {
	m := NewSlowMonitor(2)
	// Cross-variable reordering of one sender is fine.
	if err := m.Feed(1, w(0, 1, "y", 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Feed(1, w(0, 0, "x", 1)); err != nil {
		t.Fatalf("cross-variable reorder wrongly rejected: %v", err)
	}
	// Same-variable reordering is not.
	if err := m.Feed(1, w(0, 2, "x", 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Feed(1, w(0, 1, "x", 9)); err == nil {
		t.Fatal("same-variable reorder not detected")
	}
}

func TestSlowMonitorReadLatest(t *testing.T) {
	m := NewSlowMonitor(1)
	if err := m.Feed(0, r("x", model.BottomInt64)); err != nil {
		t.Fatal(err)
	}
	m.Feed(0, w(0, 0, "x", 1))
	if err := m.Feed(0, r("x", model.BottomInt64)); err == nil {
		t.Fatal("⊥ after write not detected")
	}
	if err := m.Feed(5, r("x", 0)); err == nil {
		t.Fatal("out-of-range node not detected")
	}
}

func TestCacheMonitorOrderAgreement(t *testing.T) {
	m := NewCacheMonitor(2)
	// Node 0 establishes the global order [w0#0, w1#0].
	if err := m.Feed(0, w(0, 0, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Feed(0, w(1, 0, "x", 2)); err != nil {
		t.Fatal(err)
	}
	// Node 1 follows it: fine.
	if err := m.Feed(1, w(0, 0, "x", 1)); err != nil {
		t.Fatal(err)
	}
	// Node 1 diverging: violation.
	if err := m.Feed(1, w(1, 1, "x", 3)); err == nil {
		t.Fatal("divergent apply order not detected")
	}
}

func TestCacheMonitorCrossVariableIndependent(t *testing.T) {
	m := NewCacheMonitor(2)
	if err := m.Feed(0, w(0, 0, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Feed(0, w(0, 1, "y", 2)); err != nil {
		t.Fatal(err)
	}
	// Node 1 sees y before x: allowed (different variables).
	if err := m.Feed(1, w(0, 1, "y", 2)); err != nil {
		t.Fatalf("cross-variable divergence wrongly rejected: %v", err)
	}
	if err := m.Feed(1, w(0, 0, "x", 1)); err != nil {
		t.Fatal(err)
	}
}

func TestCacheMonitorWriterOrderWithinVariable(t *testing.T) {
	m := NewCacheMonitor(1)
	m.Feed(0, w(0, 1, "x", 2))
	if err := m.Feed(0, w(0, 0, "x", 1)); err == nil {
		t.Fatal("writer order inversion within variable not detected")
	}
	m2 := NewCacheMonitor(1)
	if err := m2.Feed(3, r("x", 0)); err == nil {
		t.Fatal("out-of-range node not detected")
	}
	m3 := NewCacheMonitor(1)
	m3.Feed(0, w(0, 0, "x", 1))
	if err := m3.Feed(0, r("x", 9)); err == nil {
		t.Fatal("stale read not detected")
	}
}

func TestMonitorsConcurrent(t *testing.T) {
	// Monitors are fed from network goroutines: hammer one from several
	// goroutines with per-node disjoint valid streams.
	m := NewPRAMMonitor(4)
	var wg sync.WaitGroup
	for node := 0; node < 4; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				if err := m.Feed(node, w(node, k, "x", int64(node*10000+k))); err != nil {
					t.Errorf("node %d event %d: %v", node, k, err)
					return
				}
			}
		}(node)
	}
	wg.Wait()
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
}
