package check

import (
	"fmt"
	"math/rand"
	"testing"

	"partialdsm/internal/model"
	"partialdsm/internal/workload"
)

// BenchmarkCheckFigures measures the exact checkers on the paper's
// figure histories (the workloads of experiments E4–E6).
func BenchmarkCheckFigures(b *testing.B) {
	histories := map[string]*model.History{
		"fig4": model.Figure4History(),
		"fig5": model.Figure5History(),
		"fig6": model.Figure6History(),
	}
	for name, h := range histories {
		for _, c := range []Criterion{Causal, LazyCausal, LazySemiCausal, PRAM} {
			b.Run(fmt.Sprintf("%s/%s", name, c), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Check(h, c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCheckRandom measures the exact checkers on random histories
// of growing size (the exponential search with pruning/memoization).
func BenchmarkCheckRandom(b *testing.B) {
	for _, ops := range []int{3, 4, 5} {
		for _, c := range []Criterion{Causal, PRAM, Sequential} {
			b.Run(fmt.Sprintf("ops=%dx3/%s", ops, c), func(b *testing.B) {
				rng := rand.New(rand.NewSource(1))
				h := workload.SequentialHistory(rng, 3, 2, 3*ops)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Check(h, c); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkWitnessPRAM measures the polynomial witness validator on
// synthetic logs of growing size (what protocol verification costs).
func BenchmarkWitnessPRAM(b *testing.B) {
	for _, events := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			const procs = 8
			logs := make([][]Event, procs)
			for p := 0; p < procs; p++ {
				for k := 0; k < events/procs; k++ {
					writer := k % procs
					logs[p] = append(logs[p], Event{
						Writer: writer, WSeq: k / procs,
						Var: "x", Val: model.IntValue(int64(writer*1_000_000 + k/procs)),
					})
					logs[p] = append(logs[p], Event{
						IsRead: true, Var: "x", Val: model.IntValue(int64(writer*1_000_000 + k/procs)),
					})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := WitnessPRAM(procs, logs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCausalOrder measures the bitset transitive closure that
// underlies causal checking and the causal witness.
func BenchmarkCausalOrder(b *testing.B) {
	for _, total := range []int{60, 240, 960} {
		b.Run(fmt.Sprintf("ops=%d", total), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			h := workload.SequentialHistory(rng, 6, 4, total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := model.CausalOrder(h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
