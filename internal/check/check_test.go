package check

import (
	"testing"

	"partialdsm/internal/model"
)

// verdicts asserts the exact verdict of every criterion on h.
func verdicts(t *testing.T, h *model.History, want map[Criterion]bool) {
	t.Helper()
	got, err := CheckAll(h)
	if err != nil {
		t.Fatal(err)
	}
	for c, w := range want {
		if got[c] != w {
			t.Errorf("%s = %v, want %v\nhistory:\n%s", c, got[c], w, h)
		}
	}
}

func TestFigure4(t *testing.T) {
	// Paper Figure 4: lazy causal but not causal.
	h := model.Figure4History()
	verdicts(t, h, map[Criterion]bool{
		Sequential:     false,
		Causal:         false,
		LazyCausal:     true,
		LazySemiCausal: true,
		PRAM:           true,
		Slow:           true,
	})
}

func TestFigure4PaperSerializationsAreValid(t *testing.T) {
	h := model.Figure4History()
	lco, err := model.LazyCausalOrder(h)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range model.Figure4PaperSerializations(h) {
		if err := ValidateSerialization(h, h.SubHistoryIPlusW(p), s, lco); err != nil {
			t.Errorf("paper serialization S%d rejected: %v", p+1, err)
		}
	}
}

func TestFigure5(t *testing.T) {
	// Paper Figure 5: not lazy causal (dependency chain along the hoop
	// [p1,p2,p3]; p4 reads d before a). Still PRAM: w1 and w3 are
	// different writers, so PRAM imposes no order between their writes.
	h := model.Figure5History()
	verdicts(t, h, map[Criterion]bool{
		Sequential:     false,
		Causal:         false,
		LazyCausal:     false,
		LazySemiCausal: false,
		PRAM:           true,
		Slow:           true,
	})
}

func TestFigure6(t *testing.T) {
	// Paper Figure 6: not lazy semi-causal (w1(x)a ↦lsc w3(x)d through
	// lazy writes-before), but PRAM-consistent.
	h := model.Figure6History()
	verdicts(t, h, map[Criterion]bool{
		Causal:         false,
		LazyCausal:     false,
		LazySemiCausal: false,
		PRAM:           true,
		Slow:           true,
	})
}

func TestSequentialAccepts(t *testing.T) {
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Read(1, "x", 1).
		Write(1, "x", 2).
		Read(0, "x", 2).
		MustHistory()
	res, err := Check(h, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("interleavable history rejected by sequential checker")
	}
	po := model.ProgramOrder(h)
	all := []int{0, 1, 2, 3}
	if err := ValidateSerialization(h, all, res.Serializations[0], po); err != nil {
		t.Fatalf("returned serialization invalid: %v", err)
	}
}

func TestSequentialRejectsNonSC(t *testing.T) {
	// Classic non-SC (but causal) history: two concurrent writes read in
	// opposite orders by two observers.
	h := model.NewBuilder(4).
		Write(0, "x", 1).
		Write(1, "x", 2).
		Read(2, "x", 1).
		Read(2, "x", 2).
		Read(3, "x", 2).
		Read(3, "x", 1).
		MustHistory()
	verdicts(t, h, map[Criterion]bool{
		Sequential: false,
		Causal:     true,
		PRAM:       true,
	})
}

func TestCausalAcceptsConcurrentWrites(t *testing.T) {
	// Concurrent writes may be observed in different orders under
	// causal consistency but never under sequential consistency.
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Read(0, "x", 1).
		Write(1, "x", 2).
		Read(1, "x", 2).
		MustHistory()
	verdicts(t, h, map[Criterion]bool{
		Sequential: true, // also SC here (reads happen before seeing the other write)
		Causal:     true,
	})
}

func TestCausalRejectsStaleReadAfterChain(t *testing.T) {
	// w0(x)1 ↦po w0(y)2 ↦ro r1(y)2 ↦po r1(x)⊥: the final read must not
	// return ⊥ under causal consistency.
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		Read(1, "y", 2).
		ReadInit(1, "x").
		MustHistory()
	verdicts(t, h, map[Criterion]bool{
		Causal: false,
		// Lazy program order still orders r1(y)2 →li nothing toward
		// r1(x)⊥ (read then read, different variables), so lazy causal
		// admits it.
		LazyCausal: true,
		PRAM:       false, // pram contains po and ro; both reads are p1's, po forces the order
	})
}

func TestPRAMRejectsOwnOrderViolation(t *testing.T) {
	// A process must see its own writes in order.
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "x", 2).
		Read(1, "x", 2).
		Read(1, "x", 1).
		MustHistory()
	verdicts(t, h, map[Criterion]bool{
		PRAM: false, // w(x)1 ↦po w(x)2 must be respected in S_1
		Slow: false, // same variable, same writer: slow also forbids it
	})
}

func TestSlowAcceptsCrossVariableReordering(t *testing.T) {
	// p0 writes x then y; p1 sees y's new value then x's old one. PRAM
	// forbids it (full program order of p0), slow memory allows it
	// (different variables).
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		Read(1, "y", 2).
		ReadInit(1, "x").
		MustHistory()
	res, err := Check(h, Slow)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("slow memory must allow cross-variable reordering of one sender's writes")
	}
	resPRAM, err := Check(h, PRAM)
	if err != nil {
		t.Fatal(err)
	}
	if resPRAM.Consistent {
		t.Fatal("PRAM must reject cross-variable reordering of one sender's writes")
	}
}

func TestHierarchyOnFigures(t *testing.T) {
	// Acceptance must be monotone along every edge of the strength DAG.
	for _, h := range []*model.History{
		model.Figure4History(),
		model.Figure5History(),
		model.Figure6History(),
	} {
		got, err := CheckAll(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range Implications {
			if got[imp[0]] && !got[imp[1]] {
				t.Errorf("history satisfies %s but not weaker %s:\n%s", imp[0], imp[1], h)
			}
		}
	}
}

func TestSerializationsReturnedAreValid(t *testing.T) {
	h := model.Figure5History()
	res, err := Check(h, PRAM)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("figure 5 must be PRAM consistent")
	}
	pram, err := model.PRAMRelation(h)
	if err != nil {
		t.Fatal(err)
	}
	for p, s := range res.Serializations {
		if err := ValidateSerialization(h, h.SubHistoryIPlusW(p), s, pram); err != nil {
			t.Errorf("serialization for p%d invalid: %v", p, err)
		}
	}
}

func TestSerializationExistsEmptyAndTiny(t *testing.T) {
	h := model.NewBuilder(1).Write(0, "x", 1).MustHistory()
	if _, ok := SerializationExists(h, nil, model.NewRelation(1)); !ok {
		t.Error("empty op set must trivially serialize")
	}
	if s, ok := SerializationExists(h, []int{0}, model.ProgramOrder(h)); !ok || len(s) != 1 {
		t.Error("single write must serialize")
	}
}

func TestSerializationRejectsReadOfMissingWrite(t *testing.T) {
	// The read's writer is excluded from the subset: unsatisfiable.
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Read(1, "x", 1).
		MustHistory()
	if _, ok := SerializationExists(h, []int{1}, model.NewRelation(2)); ok {
		t.Error("read without its write in the subset must not serialize")
	}
}

func TestValidateSerializationErrors(t *testing.T) {
	h := model.NewBuilder(1).
		Write(0, "x", 1).
		Read(0, "x", 1).
		MustHistory()
	po := model.ProgramOrder(h)
	ids := []int{0, 1}
	if err := ValidateSerialization(h, ids, []int{0, 1}, po); err != nil {
		t.Errorf("valid serialization rejected: %v", err)
	}
	if err := ValidateSerialization(h, ids, []int{1, 0}, po); err == nil {
		t.Error("order violation not detected")
	}
	if err := ValidateSerialization(h, ids, []int{0}, po); err == nil {
		t.Error("wrong length not detected")
	}
	if err := ValidateSerialization(h, ids, []int{0, 0}, po); err == nil {
		t.Error("non-permutation not detected")
	}
}

func TestValidateSerializationReadLegality(t *testing.T) {
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(1, "x", 2).
		Read(0, "x", 1).
		MustHistory()
	none := model.NewRelation(3)
	// r(x)1 placed after w(x)2: stale.
	if err := ValidateSerialization(h, []int{0, 1, 2}, []int{0, 1, 2}, none); err == nil {
		t.Error("stale read not detected")
	}
	if err := ValidateSerialization(h, []int{0, 1, 2}, []int{1, 0, 2}, none); err != nil {
		t.Errorf("fresh read rejected: %v", err)
	}
}

func TestCheckRejectsMalformedHistory(t *testing.T) {
	h := model.NewBuilder(1).Read(0, "x", 99).MustHistory()
	if _, err := Check(h, Causal); err == nil {
		t.Error("read of unwritten value must error")
	}
	if _, err := CheckAll(h); err == nil {
		t.Error("CheckAll must propagate malformed-history errors")
	}
}

func TestUnknownCriterion(t *testing.T) {
	h := model.NewBuilder(1).Write(0, "x", 1).MustHistory()
	if _, err := Check(h, Criterion("bogus")); err == nil {
		t.Error("unknown criterion must error")
	}
}

func TestWritesOnlyHistoryAlwaysConsistent(t *testing.T) {
	h := model.NewBuilder(3).
		Write(0, "x", 1).
		Write(1, "x", 2).
		Write(2, "y", 3).
		MustHistory()
	got, err := CheckAll(h)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range got {
		if !v {
			t.Errorf("write-only history rejected by %s", c)
		}
	}
}
