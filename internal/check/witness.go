package check

import (
	"fmt"
	"sort"

	"partialdsm/internal/model"
)

// Event is one entry of a node's local event log, recorded by an MCS
// protocol. Write events cover both the node's own writes and remote
// writes applied to a local replica; read events record a local read.
// A write is globally identified by (Writer, WSeq) where WSeq is the
// write's index among Writer's writes in program order.
//
// Recovery events (IsRecover) record that the node re-acquired
// Var = Val — the WSeq-th write of Writer — from a peer snapshot while
// rejoining after a crash, rather than by applying the write's own
// update message. The witnesses re-anchor the node's tracking state at
// a recovery event instead of enforcing gapless apply order across it:
// the node legitimately skipped the updates it slept through. A
// recovery with Writer < 0 marks a reset — the variable came back as ⊥
// because no live peer knew a value for it.
//
// Migration events (IsMigrate) record that the node adopted Var = Val
// from a donor's transfer snapshot while gaining the variable in an
// epoch reconfiguration. Like a recovery they seed the node's replica
// view of that one variable, and Writer < 0 marks a ⊥ reset (no live
// donor survived). Unlike a recovery the node did NOT lose its memory:
// every other variable's tracking state remains binding. In particular
// the PRAM witness must not raise the per-sender frontier at a migrate
// event — the adopted value proves nothing about which of the writer's
// updates to other variables have reached this node, and an earlier
// write of the same sender may still legitimately arrive on a
// different channel after the transfer.
type Event struct {
	IsRead    bool
	IsRecover bool
	IsMigrate bool
	Writer    int // write/recovery/migration events: issuing application process
	WSeq      int // write/recovery/migration events: per-writer program-order index
	Var       string
	Val       model.Value
	// Epoch stamps the placement epoch the event happened under.
	// Protocols whose witness is location-sensitive (the atomic
	// register's "applies only at the owner" condition) must stamp it,
	// because ownership migrates across epochs; the other witnesses
	// ignore it. Zero for protocols that never reconfigure ownership.
	Epoch uint64
}

// String renders the event compactly for error messages.
func (e Event) String() string {
	if e.IsRead {
		if e.Val == model.Bottom {
			return fmt.Sprintf("read(%s)⊥", e.Var)
		}
		return fmt.Sprintf("read(%s)%v", e.Var, e.Val)
	}
	if e.IsMigrate {
		if e.Writer < 0 {
			return fmt.Sprintf("migrate(%s=⊥ reset)", e.Var)
		}
		return fmt.Sprintf("migrate(w%d#%d %s=%v)", e.Writer, e.WSeq, e.Var, e.Val)
	}
	if e.IsRecover {
		if e.Writer < 0 {
			return fmt.Sprintf("recover(%s=⊥ reset)", e.Var)
		}
		return fmt.Sprintf("recover(w%d#%d %s=%v)", e.Writer, e.WSeq, e.Var, e.Val)
	}
	return fmt.Sprintf("apply(w%d#%d %s=%v)", e.Writer, e.WSeq, e.Var, e.Val)
}

// WitnessPRAM validates per-node event logs against PRAM consistency.
// logs[i] is node i's event log in local wall order. The conditions
// checked are sufficient for PRAM consistency of the induced history:
//
//  1. per-sender order: for every node i and writer j, the WSeq values
//     of j's writes applied at i are strictly increasing (node i sees
//     j's writes in j's program order);
//  2. read-latest: every read at i returns the value of the most
//     recently applied write to that variable at i, or ⊥ if none;
//  3. self-inclusion: node i's own writes appear in its log (writes by
//     i are applied locally), in program order — implied by 1 with j=i,
//     but the completeness is checked explicitly via expected counts
//     when ownWrites is non-nil.
//
// Under partial replication a node's log contains only writes on the
// variables it replicates; any serialization S_i of H_{i+w} is then
// obtained by inserting the unseen writes (which are on variables i
// never reads) at positions compatible with their writers' program
// order, which is always possible (see DESIGN.md §6.2).
//
// Recovery events re-seed the node's tracked state: the replica view
// takes the recovered value and the writer's sequence frontier rises
// to the recovered WSeq, so a subsequent apply must carry a newer
// sequence number than anything the adopted snapshot already reflects.
func WitnessPRAM(numProcs int, logs [][]Event) error {
	if len(logs) != numProcs {
		return fmt.Errorf("check: %d logs for %d processes", len(logs), numProcs)
	}
	for i, log := range logs {
		lastSeq := make([]int, numProcs)
		for j := range lastSeq {
			lastSeq[j] = -1
		}
		cur := make(map[string]model.Value)
		for k, e := range log {
			if e.IsMigrate {
				// A migrated value seeds the replica view only: the node's
				// per-sender frontiers stay put (see the Event doc).
				if e.Writer >= numProcs {
					return fmt.Errorf("check: node %d event %d: writer %d out of range", i, k, e.Writer)
				}
				cur[e.Var] = e.Val
				continue
			}
			if e.IsRecover {
				if e.Writer >= numProcs {
					return fmt.Errorf("check: node %d event %d: writer %d out of range", i, k, e.Writer)
				}
				if e.Writer >= 0 && e.WSeq > lastSeq[e.Writer] {
					lastSeq[e.Writer] = e.WSeq
				}
				cur[e.Var] = e.Val
				continue
			}
			if e.IsRead {
				want, ok := cur[e.Var]
				if !ok {
					want = model.Bottom
				}
				if e.Val != want {
					return fmt.Errorf("check: node %d event %d: %v returned %v, last applied write is %v",
						i, k, e, e.Val, want)
				}
				continue
			}
			if e.Writer < 0 || e.Writer >= numProcs {
				return fmt.Errorf("check: node %d event %d: writer %d out of range", i, k, e.Writer)
			}
			if e.WSeq <= lastSeq[e.Writer] {
				return fmt.Errorf("check: node %d event %d: %v applied out of sender order (last applied #%d)",
					i, k, e, lastSeq[e.Writer])
			}
			lastSeq[e.Writer] = e.WSeq
			cur[e.Var] = e.Val
		}
	}
	return nil
}

// WitnessSlow validates per-node event logs against slow memory: like
// WitnessPRAM but per-sender order is only required per (sender,
// variable) pair — a node may see one sender's writes to different
// variables out of program order.
func WitnessSlow(numProcs int, logs [][]Event) error {
	if len(logs) != numProcs {
		return fmt.Errorf("check: %d logs for %d processes", len(logs), numProcs)
	}
	type sv struct {
		sender int
		v      string
	}
	for i, log := range logs {
		lastSeq := make(map[sv]int)
		cur := make(map[string]model.Value)
		for k, e := range log {
			if e.IsRecover {
				if e.Writer >= 0 {
					key := sv{e.Writer, e.Var}
					if last, seen := lastSeq[key]; !seen || e.WSeq > last {
						lastSeq[key] = e.WSeq
					}
				}
				cur[e.Var] = e.Val
				continue
			}
			if e.IsRead {
				want, ok := cur[e.Var]
				if !ok {
					want = model.Bottom
				}
				if e.Val != want {
					return fmt.Errorf("check: node %d event %d: %v returned %v, last applied write is %v",
						i, k, e, e.Val, want)
				}
				continue
			}
			if e.IsMigrate {
				// Slow memory orders per (sender, variable): the adopted
				// value is the newest write to exactly this variable, so
				// raising the pair's frontier is sound — no other
				// variable's stream is constrained.
				if e.Writer >= 0 {
					key := sv{e.Writer, e.Var}
					if last, seen := lastSeq[key]; !seen || e.WSeq > last {
						lastSeq[key] = e.WSeq
					}
				}
				cur[e.Var] = e.Val
				continue
			}
			key := sv{e.Writer, e.Var}
			if last, seen := lastSeq[key]; seen && e.WSeq <= last {
				return fmt.Errorf("check: node %d event %d: %v applied out of per-variable sender order (last #%d)",
					i, k, e, last)
			}
			lastSeq[key] = e.WSeq
			cur[e.Var] = e.Val
		}
	}
	return nil
}

// WitnessCache validates per-node event logs against cache consistency
// for per-variable total-order protocols (internal/mcs/cachepart). It
// checks, per variable x:
//
//  1. read-latest at every node (reads return the last locally applied
//     x-write, ⊥ before any);
//  2. order agreement: every node's apply sequence for x is a prefix of
//     the longest node's sequence — all replicas apply x's writes in
//     one global order;
//  3. per-writer sanity: within that global order, each writer's
//     writes to x appear with increasing WSeq (the writer's program
//     order restricted to x survives sequencing).
//
// Crash recovery and epoch migration weaken the per-node condition at
// the boundary: a recovery or migration event re-anchors the node's
// position in the variable's global order at the adopted write (the
// skipped prefix was slept through or spent outside the clique, not
// reordered), and from then on the node's applies must hit strictly
// advancing positions of the order — a necessary condition rather
// than the exact prefix alignment of an uninterrupted node.
//
// Cache consistency carries no cross-variable constraint, so the
// replay is scheduled per variable: each node's subsequence of events
// touching x is fed in its local order, and a node parks at an anchor
// (recovery or migration with a real value) until the anchored write
// has been sequenced by some other node's replay. Under placement
// churn every log may contain anchors — a node sheds x in one epoch
// and regains it in a later one — so the order-defining history of an
// epoch can live on any node; the parking rule reconstructs the
// cross-epoch chain regardless of which nodes carry which fragment.
// When every remaining node is parked (an anchor's write completed
// through recovery without any surviving apply), the lowest one is
// forced: the monitor enters the anchored write itself.
func WitnessCache(numProcs int, logs [][]Event) error {
	if len(logs) != numProcs {
		return fmt.Errorf("check: %d logs for %d processes", len(logs), numProcs)
	}
	m := NewCacheMonitor(numProcs)
	var vars []string
	sub := make(map[string][][]Event)
	for i, log := range logs {
		for _, e := range log {
			if sub[e.Var] == nil {
				vars = append(vars, e.Var)
				sub[e.Var] = make([][]Event, numProcs)
			}
			sub[e.Var][i] = append(sub[e.Var][i], e)
		}
	}
	for _, x := range vars {
		if err := witnessCacheVar(m, x, sub[x]); err != nil {
			return err
		}
	}
	return nil
}

// witnessCacheVar replays one variable's per-node subsequences through
// the monitor. Nodes whose subsequence holds no anchor go first (their
// uninterrupted prefixes define the early order, matching the replay
// order the anchored nodes resolve against); the anchored nodes then
// run under the parking worklist described on WitnessCache.
func witnessCacheVar(m *CacheMonitor, x string, sub [][]Event) error {
	cur := make([]int, len(sub))
	anchored := func(i int) bool {
		for _, e := range sub[i] {
			if e.IsRecover || e.IsMigrate {
				return true
			}
		}
		return false
	}
	for i, events := range sub {
		if anchored(i) {
			continue
		}
		for _, e := range events {
			if err := m.Feed(i, e); err != nil {
				return err
			}
		}
		cur[i] = len(events)
	}
	for {
		progress, done := false, true
		for i := range sub {
			for cur[i] < len(sub[i]) {
				e := sub[i][cur[i]]
				if (e.IsRecover || e.IsMigrate) && e.Writer >= 0 && !m.Sequenced(x, e.Writer, e.WSeq, e.Val) {
					break // parked until the anchored write is known
				}
				if err := m.Feed(i, e); err != nil {
					return err
				}
				cur[i]++
				progress = true
			}
			if cur[i] < len(sub[i]) {
				done = false
			}
		}
		if done {
			return nil
		}
		if !progress {
			// Every remaining node is parked on an unknown anchor:
			// force the lowest one — Feed enters the write itself.
			for i := range sub {
				if cur[i] < len(sub[i]) {
					if err := m.Feed(i, sub[i][cur[i]]); err != nil {
						return err
					}
					cur[i]++
					break
				}
			}
		}
	}
}

// WitnessAtomic validates per-node event logs of a primary-based
// atomic-register protocol, where the authoritative copy of each
// variable lives at primaryOf(x) and apply events are recorded only
// there. It checks, per variable x:
//
//  1. apply events for x occur only at its primary;
//  2. every read returns a value in the primary's apply sequence for x
//     (or ⊥ while nothing was applied);
//  3. per node, successive reads of x observe values at non-decreasing
//     positions of the primary's apply sequence (the register never
//     goes backward for a sequential client).
//
// These are necessary conditions for linearizability; the full
// criterion is checked on small runs by the exact sequential checker.
//
// A restarted primary's recovery events extend the model: a recovery
// carrying a real value re-enters that value into the register's apply
// sequence if the crash swallowed its original apply (the write
// completed through a writer's resend cache), and is a no-op when the
// value was already applied pre-crash. A ⊥-reset recovery (no live
// writer knew a value) excuses the variable from the read checks: the
// register observably restarted from ⊥, so earlier positions are
// unreachable evidence, not violations.
func WitnessAtomic(numProcs int, logs [][]Event, primaryOf func(string) int) error {
	if len(logs) != numProcs {
		return fmt.Errorf("check: %d logs for %d processes", len(logs), numProcs)
	}
	// Primary apply sequences.
	pos := make(map[string]map[model.Value]int)
	reset := make(map[string]bool)
	for i, log := range logs {
		for k, e := range log {
			if e.IsRead {
				continue
			}
			if p := primaryOf(e.Var); p != i {
				return fmt.Errorf("check: node %d event %d: %v applied away from primary %d", i, k, e, p)
			}
			if e.IsRecover || e.IsMigrate {
				if e.Writer < 0 {
					reset[e.Var] = true
					continue
				}
				if pos[e.Var] == nil {
					pos[e.Var] = make(map[model.Value]int)
				}
				if _, known := pos[e.Var][e.Val]; !known {
					pos[e.Var][e.Val] = len(pos[e.Var])
				}
				continue
			}
			if pos[e.Var] == nil {
				pos[e.Var] = make(map[model.Value]int)
			}
			if _, dup := pos[e.Var][e.Val]; dup {
				return fmt.Errorf("check: node %d event %d: value %v applied twice to %s", i, k, e.Val, e.Var)
			}
			pos[e.Var][e.Val] = len(pos[e.Var])
		}
	}
	// Per-node monotone observation.
	for i, log := range logs {
		last := make(map[string]int)
		for k, e := range log {
			if !e.IsRead || reset[e.Var] {
				continue
			}
			if e.Val == model.Bottom {
				if last[e.Var] > 0 {
					return fmt.Errorf("check: node %d event %d: %v after observing a written value", i, k, e)
				}
				continue
			}
			p, ok := pos[e.Var][e.Val]
			if !ok {
				return fmt.Errorf("check: node %d event %d: %v returns a value never applied at the primary", i, k, e)
			}
			if p+1 < last[e.Var] {
				return fmt.Errorf("check: node %d event %d: %v observes position %d after position %d (register went backward)",
					i, k, e, p, last[e.Var]-1)
			}
			if p+1 > last[e.Var] {
				last[e.Var] = p + 1
			}
		}
	}
	return nil
}

// WitnessAtomicDynamic generalizes WitnessAtomic to migratable
// ownership: ownerAt(x, epoch) resolves which node held x's
// authoritative copy under the placement committed at or before that
// epoch (ok=false when the variable is unknown). Apply, recovery and
// migration events must sit at the owner of their stamped epoch, and
// the register's apply sequence is reconstructed in epoch order — per
// epoch exactly one owner applies, so within an epoch the owner's log
// order is the register order, and the handoff's migration event
// splices the sequences (the transferred value is already known, so it
// re-enters at its old position; a ⊥-reset migration, recorded when no
// donor survived, excuses the variable like a ⊥-reset recovery does).
// The per-node monotone-observation condition is unchanged.
func WitnessAtomicDynamic(numProcs int, logs [][]Event, ownerAt func(x string, epoch uint64) (int, bool)) error {
	if len(logs) != numProcs {
		return fmt.Errorf("check: %d logs for %d processes", len(logs), numProcs)
	}
	// Collect each variable's apply-side events across all nodes.
	type applyEv struct {
		node, k int
		e       Event
	}
	byVar := make(map[string][]applyEv)
	var varNames []string
	for i, log := range logs {
		for k, e := range log {
			if e.IsRead {
				continue
			}
			if own, ok := ownerAt(e.Var, e.Epoch); ok && own != i {
				return fmt.Errorf("check: node %d event %d: %v applied away from epoch-%d owner %d", i, k, e, e.Epoch, own)
			}
			if _, seen := byVar[e.Var]; !seen {
				varNames = append(varNames, e.Var)
			}
			byVar[e.Var] = append(byVar[e.Var], applyEv{node: i, k: k, e: e})
		}
	}
	sort.Strings(varNames)
	// Reconstruct each register's apply sequence in (epoch, log index)
	// order. One owner per epoch means events of an epoch come from a
	// single node's log, so the within-epoch order is well defined.
	pos := make(map[string]map[model.Value]int)
	reset := make(map[string]bool)
	for _, x := range varNames {
		evs := byVar[x]
		sort.SliceStable(evs, func(a, b int) bool {
			if evs[a].e.Epoch != evs[b].e.Epoch {
				return evs[a].e.Epoch < evs[b].e.Epoch
			}
			return evs[a].k < evs[b].k
		})
		for _, ae := range evs {
			e := ae.e
			if e.IsRecover || e.IsMigrate {
				if e.Writer < 0 {
					reset[x] = true
					continue
				}
				if pos[x] == nil {
					pos[x] = make(map[model.Value]int)
				}
				if _, known := pos[x][e.Val]; !known {
					pos[x][e.Val] = len(pos[x])
				}
				continue
			}
			if pos[x] == nil {
				pos[x] = make(map[model.Value]int)
			}
			if _, dup := pos[x][e.Val]; dup {
				return fmt.Errorf("check: node %d event %d: value %v applied twice to %s", ae.node, ae.k, e.Val, x)
			}
			pos[x][e.Val] = len(pos[x])
		}
	}
	// Per-node monotone observation, as in WitnessAtomic.
	for i, log := range logs {
		last := make(map[string]int)
		for k, e := range log {
			if !e.IsRead || reset[e.Var] {
				continue
			}
			if e.Val == model.Bottom {
				if last[e.Var] > 0 {
					return fmt.Errorf("check: node %d event %d: %v after observing a written value", i, k, e)
				}
				continue
			}
			p, ok := pos[e.Var][e.Val]
			if !ok {
				return fmt.Errorf("check: node %d event %d: %v returns a value never applied at the owner", i, k, e)
			}
			if p+1 < last[e.Var] {
				return fmt.Errorf("check: node %d event %d: %v observes position %d after position %d (register went backward)",
					i, k, e, p, last[e.Var]-1)
			}
			if p+1 > last[e.Var] {
				last[e.Var] = p + 1
			}
		}
	}
	return nil
}

// WitnessCausal validates per-node event logs against causal
// consistency of the global history h. It checks that
//
//  1. every node applies writes in an order that is a linear extension
//     of the causality order ↦co restricted to the writes it applied;
//  2. read-latest holds at every node.
//
// These conditions are sufficient: the apply order extended with the
// node's unseen writes (possible because the seen order never inverts a
// ↦co edge) is a serialization of H_{i+w} respecting ↦co.
//
// h must contain exactly the operations the logs were produced from:
// the (writer, wseq) pair of a write event addresses the wseq-th write
// of process writer in h.
func WitnessCausal(h *model.History, logs [][]Event) error {
	if len(logs) != h.NumProcs() {
		return fmt.Errorf("check: %d logs for %d processes", len(logs), h.NumProcs())
	}
	co, err := model.CausalOrder(h)
	if err != nil {
		return err
	}
	// Map (writer, wseq) → op ID.
	writeID := make([][]int, h.NumProcs())
	for p := 0; p < h.NumProcs(); p++ {
		for _, id := range h.Local(p) {
			if h.Op(id).IsWrite() {
				writeID[p] = append(writeID[p], id)
			}
		}
	}
	// checkSegment validates one uninterrupted stretch of applies: no
	// causal-edge inversion and no duplicate apply. Recovery events cut
	// segment boundaries — a node that lost its memory and re-seeded
	// from a snapshot restarts its apply order, so constraints do not
	// span the crash (the snapshot state itself is validated value by
	// value against the history).
	checkSegment := func(i int, appliedIDs []int) error {
		pos := make(map[int]int, len(appliedIDs))
		for p, id := range appliedIDs {
			if _, dup := pos[id]; dup {
				return fmt.Errorf("check: node %d applied %v twice", i, h.Op(id))
			}
			pos[id] = p
		}
		for _, a := range appliedIDs {
			for _, b := range appliedIDs {
				if a != b && co.Has(a, b) && pos[a] > pos[b] {
					return fmt.Errorf("check: node %d applied %v before %v, violating causal order",
						i, h.Op(b), h.Op(a))
				}
			}
		}
		return nil
	}
	for i, log := range logs {
		cur := make(map[string]model.Value)
		var appliedIDs []int
		for k, e := range log {
			if e.IsRead {
				want, ok := cur[e.Var]
				if !ok {
					want = model.Bottom
				}
				if e.Val != want {
					return fmt.Errorf("check: node %d event %d: %v returned %v, last applied write is %v",
						i, k, e, e.Val, want)
				}
				continue
			}
			if e.IsMigrate {
				// Migration transfers one variable's state without the node
				// losing its memory: validate the adopted value against the
				// history and seed the replica view, but keep the apply
				// segment intact — causal constraints on everything already
				// applied remain binding across the flip.
				if e.Writer < 0 {
					cur[e.Var] = model.Bottom
					continue
				}
				if e.Writer >= h.NumProcs() || e.WSeq < 0 || e.WSeq >= len(writeID[e.Writer]) {
					return fmt.Errorf("check: node %d event %d: %v addresses no write in the history", i, k, e)
				}
				if op := h.Op(writeID[e.Writer][e.WSeq]); op.Var != e.Var || op.Val != e.Val {
					return fmt.Errorf("check: node %d event %d: %v does not match history op %v", i, k, e, op)
				}
				cur[e.Var] = e.Val
				continue
			}
			if e.IsRecover {
				if err := checkSegment(i, appliedIDs); err != nil {
					return err
				}
				appliedIDs = appliedIDs[:0]
				if e.Writer < 0 {
					cur[e.Var] = model.Bottom
					continue
				}
				if e.Writer >= h.NumProcs() || e.WSeq < 0 || e.WSeq >= len(writeID[e.Writer]) {
					return fmt.Errorf("check: node %d event %d: %v addresses no write in the history", i, k, e)
				}
				if op := h.Op(writeID[e.Writer][e.WSeq]); op.Var != e.Var || op.Val != e.Val {
					return fmt.Errorf("check: node %d event %d: %v does not match history op %v", i, k, e, op)
				}
				cur[e.Var] = e.Val
				continue
			}
			if e.Writer < 0 || e.Writer >= h.NumProcs() || e.WSeq < 0 || e.WSeq >= len(writeID[e.Writer]) {
				return fmt.Errorf("check: node %d event %d: %v addresses no write in the history", i, k, e)
			}
			id := writeID[e.Writer][e.WSeq]
			if op := h.Op(id); op.Var != e.Var || op.Val != e.Val {
				return fmt.Errorf("check: node %d event %d: %v does not match history op %v", i, k, e, op)
			}
			appliedIDs = append(appliedIDs, id)
			cur[e.Var] = e.Val
		}
		// Apply order must not invert any causal edge.
		if err := checkSegment(i, appliedIDs); err != nil {
			return err
		}
	}
	return nil
}
