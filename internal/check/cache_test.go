package check

import (
	"testing"

	"partialdsm/internal/model"
)

func TestCacheAcceptsPerVariableSC(t *testing.T) {
	// Per-variable projections are SC even though the global history is
	// not sequentially consistent (cross-variable inversion).
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		Read(1, "y", 2).
		ReadInit(1, "x"). // sees y's write but not x's: not SC, not PRAM
		MustHistory()
	got, err := CheckAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if !got[Cache] {
		t.Error("cache must accept cross-variable reordering")
	}
	if got[Sequential] || got[PRAM] {
		t.Error("sequential and PRAM must reject this history")
	}
}

func TestCacheRejectsPerVariableViolation(t *testing.T) {
	// Two observers see two writes to the SAME variable in opposite
	// orders: the per-variable projection is not SC.
	h := model.NewBuilder(4).
		Write(0, "x", 1).
		Write(1, "x", 2).
		Read(2, "x", 1).
		Read(2, "x", 2).
		Read(3, "x", 2).
		Read(3, "x", 1).
		MustHistory()
	got, err := CheckAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if got[Cache] {
		t.Error("cache must reject opposite observation orders on one variable")
	}
	// PRAM accepts it (different writers, no cross-writer order).
	if !got[PRAM] {
		t.Error("PRAM should accept it — cache and PRAM are incomparable")
	}
}

func TestCacheIncomparableWithPRAM(t *testing.T) {
	// Direction 1: PRAM yes, cache no — the history above.
	// Direction 2: cache yes, PRAM no — the first test's history.
	// Both covered; here assert the Implications DAG has no edge
	// between them in either direction.
	for _, imp := range Implications {
		if (imp[0] == PRAM && imp[1] == Cache) || (imp[0] == Cache && imp[1] == PRAM) {
			t.Errorf("implications must not relate PRAM and cache: %v", imp)
		}
	}
}

func TestCacheSerializationsReturned(t *testing.T) {
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Read(1, "x", 1).
		Write(1, "y", 2).
		MustHistory()
	res, err := Check(h, Cache)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Fatal("simple history rejected")
	}
	// One serialization per variable (x and y).
	if len(res.Serializations) != 2 {
		t.Errorf("got %d per-variable serializations", len(res.Serializations))
	}
}

func TestCacheRejectsOwnOrderViolationOnVariable(t *testing.T) {
	// A reader sees one writer's x-writes out of program order.
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "x", 2).
		Read(1, "x", 2).
		Read(1, "x", 1).
		MustHistory()
	res, err := Check(h, Cache)
	if err != nil {
		t.Fatal(err)
	}
	if res.Consistent {
		t.Error("cache must respect program order within one variable")
	}
}

func TestWitnessCacheAccepts(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(1, 0, "x", 2), r("x", 2)},
		{w(0, 0, "x", 1), w(1, 0, "x", 2)},
	}
	if err := WitnessCache(2, logs); err != nil {
		t.Fatalf("valid logs rejected: %v", err)
	}
}

func TestWitnessCacheRejectsDivergentOrders(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(1, 0, "x", 2)},
		{w(1, 0, "x", 2), w(0, 0, "x", 1)},
	}
	if err := WitnessCache(2, logs); err == nil {
		t.Fatal("divergent per-variable apply orders not detected")
	}
}

func TestWitnessCacheAllowsCrossVariableDivergence(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "y", 2)},
		{w(0, 1, "y", 2), w(0, 0, "x", 1)}, // different vars: fine
	}
	if err := WitnessCache(2, logs); err != nil {
		t.Fatalf("cross-variable divergence wrongly rejected: %v", err)
	}
}

func TestWitnessCacheRejectsWriterOrderInversion(t *testing.T) {
	logs := [][]Event{
		{w(0, 1, "x", 2), w(0, 0, "x", 1)}, // writer 0's x-writes inverted
	}
	if err := WitnessCache(1, logs); err == nil {
		t.Fatal("writer program-order inversion within a variable not detected")
	}
}

func TestWitnessCacheReadLatest(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), r("x", 99)},
	}
	if err := WitnessCache(1, logs); err == nil {
		t.Fatal("stale read not detected")
	}
	if err := WitnessCache(2, [][]Event{{}}); err == nil {
		t.Fatal("shape mismatch not detected")
	}
}
