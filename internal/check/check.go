// Package check decides whether histories satisfy the consistency
// criteria studied by Hélary & Milani: causal consistency, the paper's
// lazy causal and lazy semi-causal weakenings, PRAM, sequential
// consistency and slow memory.
//
// Two mechanisms are provided:
//
//   - exact checkers (Check, CheckAll) that search for the per-process
//     serializations required by each criterion's definition, suitable
//     for small histories such as the paper's figures and randomized
//     tests; and
//   - polynomial witness validators (witness.go) that validate the
//     per-node apply orders recorded by the protocols in internal/mcs,
//     suitable for traces with thousands of operations.
package check

import (
	"fmt"
	"sort"

	"partialdsm/internal/model"
)

// Criterion names a consistency criterion.
type Criterion string

// The criteria ordered from strongest to weakest (paper §1, §4, §5).
const (
	// Sequential requires a single serialization of the whole history
	// respecting every process's program order (Lamport).
	Sequential Criterion = "sequential"
	// Causal requires, for each process i, a serialization of H_{i+w}
	// respecting the causality order ↦co (Ahamad et al.; paper Def. 2).
	Causal Criterion = "causal"
	// LazyCausal weakens program order to lazy program order
	// (paper Defs. 5–7).
	LazyCausal Criterion = "lazy-causal"
	// LazySemiCausal further weakens read-from to lazy writes-before
	// (paper Defs. 8–10).
	LazySemiCausal Criterion = "lazy-semi-causal"
	// PRAM requires serializations respecting only program order and
	// direct read-from, without transitivity (Lipton & Sandberg;
	// paper Defs. 11–12).
	PRAM Criterion = "pram"
	// Slow requires only that each process sees another process's
	// writes to a single variable in issue order (Hutto & Ahamad,
	// mentioned in paper §5). Formalized here as the relation
	// rf ∪ (program order restricted to same-variable pairs) ∪ (the
	// observing process's own program order).
	Slow Criterion = "slow"
	// Cache is Goodman's cache consistency: for every variable x, the
	// projection of the history onto operations on x is sequentially
	// consistent. Not in the paper; included because it sharpens the
	// paper's §7 open question — it is incomparable with PRAM yet
	// admits an efficient partial-replication implementation (each
	// variable's total order involves only C(x); see
	// internal/mcs/cachepart).
	Cache Criterion = "cache"
)

// Criteria lists all supported criteria, roughly from stronger to
// weaker. The strength order is partial, not total: see Implications.
var Criteria = []Criterion{Sequential, Causal, LazyCausal, LazySemiCausal, PRAM, Slow, Cache}

// Implications lists the provable strength relations as (stronger,
// weaker) pairs: a history satisfying the stronger criterion satisfies
// the weaker one, because the weaker criterion's order relation is a
// subset of the stronger one's.
//
// PRAM and the lazy criteria are incomparable: PRAM keeps the full
// program order but drops transitivity, while the lazy criteria keep
// transitivity but relate fewer same-process pairs. (A process that
// reads x then reads y may see them "out of order" under lazy causal
// consistency but never under PRAM, and vice versa for transitive
// chains through intermediary processes.)
var Implications = [][2]Criterion{
	{Sequential, Causal},
	{Causal, LazyCausal},
	{LazyCausal, LazySemiCausal},
	{Causal, PRAM},
	{PRAM, Slow},
	{Sequential, Cache},
}

// Result reports the outcome of a consistency check.
type Result struct {
	Criterion  Criterion
	Consistent bool
	// Serializations maps each process i to a legal serialization of
	// H_{i+w} (op IDs in order) when Consistent. For Sequential the
	// single global serialization is stored under key 0.
	Serializations map[int][]int
}

// Check decides whether h satisfies the criterion. It returns an error
// only for malformed histories (non-differentiated, reads of unwritten
// values); an inconsistent history is not an error.
func Check(h *model.History, c Criterion) (Result, error) {
	res := Result{Criterion: c, Serializations: make(map[int][]int)}
	if c == Cache {
		return checkCache(h)
	}
	if c == Sequential {
		all := make([]int, h.Len())
		for i := range all {
			all[i] = i
		}
		rf, err := model.ReadFrom(h) // validates the history
		if err != nil {
			return res, err
		}
		_ = rf
		s, ok := SerializationExists(h, all, model.ProgramOrder(h))
		res.Consistent = ok
		if ok {
			res.Serializations[0] = s
		}
		return res, nil
	}

	relFor, err := relationBuilder(h, c)
	if err != nil {
		return res, err
	}
	for i := 0; i < h.NumProcs(); i++ {
		rel, err := relFor(i)
		if err != nil {
			return res, err
		}
		s, ok := SerializationExists(h, h.SubHistoryIPlusW(i), rel)
		if !ok {
			res.Consistent = false
			res.Serializations = nil
			return res, nil
		}
		res.Serializations[i] = s
	}
	res.Consistent = true
	return res, nil
}

// relationBuilder returns a function producing, for observer process i,
// the order relation that S_i must respect under criterion c. For all
// criteria except Slow the relation is independent of i and computed
// once.
func relationBuilder(h *model.History, c Criterion) (func(i int) (*model.Relation, error), error) {
	var shared *model.Relation
	var err error
	switch c {
	case Causal:
		shared, err = model.CausalOrder(h)
	case LazyCausal:
		shared, err = model.LazyCausalOrder(h)
	case LazySemiCausal:
		shared, err = model.LazySemiCausalOrder(h)
	case PRAM:
		shared, err = model.PRAMRelation(h)
	case Slow:
		return func(i int) (*model.Relation, error) { return slowRelation(h, i) }, nil
	default:
		return nil, fmt.Errorf("check: unknown criterion %q", c)
	}
	if err != nil {
		return nil, err
	}
	return func(int) (*model.Relation, error) { return shared, nil }, nil
}

// checkCache decides cache consistency: one legal serialization per
// variable, over the operations on that variable, respecting program
// order restricted to those operations. Serializations are keyed by
// the variable's position in h.Vars().
func checkCache(h *model.History) (Result, error) {
	res := Result{Criterion: Cache, Serializations: make(map[int][]int)}
	if _, err := model.ReadFrom(h); err != nil { // validates the history
		return res, err
	}
	po := model.ProgramOrder(h)
	for vi, x := range h.Vars() {
		var ids []int
		for _, o := range h.Ops() {
			if o.Var == x {
				ids = append(ids, o.ID)
			}
		}
		s, ok := SerializationExists(h, ids, po)
		if !ok {
			res.Consistent = false
			res.Serializations = nil
			return res, nil
		}
		res.Serializations[vi] = s
	}
	res.Consistent = true
	return res, nil
}

// slowRelation builds the per-observer relation for slow memory: the
// read-from pairs, program order between same-variable operations of
// any process, and the observer's own full program order.
func slowRelation(h *model.History, observer int) (*model.Relation, error) {
	rf, err := model.ReadFrom(h)
	if err != nil {
		return nil, err
	}
	r := rf.Clone()
	for p := 0; p < h.NumProcs(); p++ {
		local := h.Local(p)
		for i := 0; i < len(local); i++ {
			o1 := h.Op(local[i])
			for j := i + 1; j < len(local); j++ {
				o2 := h.Op(local[j])
				if p == observer || o1.Var == o2.Var {
					r.Add(o1.ID, o2.ID)
				}
			}
		}
	}
	return r, nil
}

// CheckAll evaluates every supported criterion on h and returns the
// verdicts keyed by criterion.
func CheckAll(h *model.History) (map[Criterion]bool, error) {
	out := make(map[Criterion]bool, len(Criteria))
	for _, c := range Criteria {
		res, err := Check(h, c)
		if err != nil {
			return nil, err
		}
		out[c] = res.Consistent
	}
	return out, nil
}

// SerializationExists searches for a legal serialization of the
// operations in ids (a subset of h's op IDs) that respects rel
// restricted to ids. A serialization is legal when every read of a
// variable x returns the value written by the most recent preceding
// write to x in the sequence, or ⊥ when no write precedes it
// (paper Definition 1).
//
// The search is an exact backtracking topological enumeration with
// read-feasibility pruning and memoization; it is exponential in the
// worst case and intended for small histories (≲ 24 operations).
func SerializationExists(h *model.History, ids []int, rel *model.Relation) ([]int, bool) {
	n := len(ids)
	if n == 0 {
		return []int{}, true
	}
	// Local indexing 0..n-1 over the subset.
	pos := make(map[int]int, n)
	for li, id := range ids {
		pos[id] = li
	}
	// rf writer local index per read, -1 for ⊥-reads, -2 for writes.
	rfOf := make([]int, n)
	type vv struct {
		v   string
		val model.Value
	}
	writerOf := make(map[vv]int)
	for li, id := range ids {
		o := h.Op(id)
		if o.IsWrite() {
			writerOf[vv{o.Var, o.Val}] = li
		}
	}
	vars := make(map[string]int) // var → dense index
	varOf := make([]int, n)
	for li, id := range ids {
		o := h.Op(id)
		vi, ok := vars[o.Var]
		if !ok {
			vi = len(vars)
			vars[o.Var] = vi
		}
		varOf[li] = vi
		switch {
		case o.IsWrite():
			rfOf[li] = -2
		case o.Val == model.Bottom:
			rfOf[li] = -1
		default:
			w, ok := writerOf[vv{o.Var, o.Val}]
			if !ok {
				// The write is outside the subset: cannot be satisfied.
				return nil, false
			}
			rfOf[li] = w
		}
	}
	// Predecessor sets (within the subset) induced by rel.
	preds := make([]model.Bitset, n)
	for li := range preds {
		preds[li] = model.NewBitset(n)
	}
	for ai, aid := range ids {
		succ := rel.Succ(aid)
		for bi, bid := range ids {
			if ai != bi && succ.Has(bid) {
				preds[bi].Set(ai)
			}
		}
	}
	// Unplaced reads per variable, for write-placement pruning.
	readsOnVar := make([][]int, len(vars))
	for li := range ids {
		if rfOf[li] != -2 {
			readsOnVar[varOf[li]] = append(readsOnVar[varOf[li]], li)
		}
	}

	placed := model.NewBitset(n)
	lastWrite := make([]int, len(vars))
	for i := range lastWrite {
		lastWrite[i] = -1
	}
	order := make([]int, 0, n)
	memo := make(map[string]bool)

	key := func() string {
		// The feasibility of completing depends on the placed set and
		// the current last write per variable.
		b := make([]byte, 0, len(placed)*8+len(lastWrite)*2)
		for _, w := range placed {
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(w>>uint(s)))
			}
		}
		for _, lw := range lastWrite {
			b = append(b, byte(lw+1), byte((lw+1)>>8))
		}
		return string(b)
	}

	allPredsPlaced := func(li int) bool {
		for wi, w := range preds[li] {
			if w&^placed[wi] != 0 {
				return false
			}
		}
		return true
	}

	var solve func() bool
	solve = func() bool {
		if len(order) == n {
			return true
		}
		k := key()
		if done, seen := memo[k]; seen {
			return done
		}
		ok := false
		for li := 0; li < n && !ok; li++ {
			if placed.Has(li) || !allPredsPlaced(li) {
				continue
			}
			vi := varOf[li]
			if rfOf[li] == -2 {
				// Placing a write to x makes every unplaced read that
				// requires an earlier last-write on x unsatisfiable.
				dead := false
				for _, ri := range readsOnVar[vi] {
					if placed.Has(ri) || ri == li {
						continue
					}
					want := rfOf[ri]
					if want == li {
						continue // reads this very write later: fine
					}
					if want == -1 || placed.Has(want) {
						// ⊥-read, or its writer already placed: placing
						// another write to x now kills it.
						dead = true
						break
					}
				}
				if dead {
					continue
				}
				prev := lastWrite[vi]
				lastWrite[vi] = li
				placed.Set(li)
				order = append(order, li)
				if solve() {
					ok = true
				} else {
					order = order[:len(order)-1]
					placed.Clear(li)
					lastWrite[vi] = prev
				}
			} else {
				// A read is legal only if the current last write on its
				// variable is exactly its read-from writer (or none for
				// ⊥-reads).
				if lastWrite[vi] != rfOf[li] && !(rfOf[li] == -1 && lastWrite[vi] == -1) {
					continue
				}
				placed.Set(li)
				order = append(order, li)
				if solve() {
					ok = true
				} else {
					order = order[:len(order)-1]
					placed.Clear(li)
				}
			}
		}
		memo[k] = ok
		return ok
	}

	if !solve() {
		return nil, false
	}
	out := make([]int, n)
	for i, li := range order {
		out[i] = ids[li]
	}
	return out, true
}

// ValidateSerialization verifies that s is a legal serialization of
// exactly the operations in ids that respects rel. It returns nil when
// valid and a descriptive error otherwise. This is the polynomial
// validator used to double-check search results and protocol witnesses.
func ValidateSerialization(h *model.History, ids []int, s []int, rel *model.Relation) error {
	if len(s) != len(ids) {
		return fmt.Errorf("check: serialization has %d operations, want %d", len(s), len(ids))
	}
	want := append([]int(nil), ids...)
	got := append([]int(nil), s...)
	sort.Ints(want)
	sort.Ints(got)
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("check: serialization is not a permutation of the operation set")
		}
	}
	posIn := make(map[int]int, len(s))
	for i, id := range s {
		posIn[id] = i
	}
	// Order constraints.
	for _, a := range ids {
		succ := rel.Succ(a)
		for _, b := range ids {
			if a != b && succ.Has(b) && posIn[a] > posIn[b] {
				return fmt.Errorf("check: serialization violates order: %v must precede %v", h.Op(a), h.Op(b))
			}
		}
	}
	// Read legality.
	lastWrite := make(map[string]model.Op)
	for _, id := range s {
		o := h.Op(id)
		if o.IsWrite() {
			lastWrite[o.Var] = o
			continue
		}
		lw, haveWrite := lastWrite[o.Var]
		switch {
		case !haveWrite && o.Val != model.Bottom:
			return fmt.Errorf("check: read %v has no preceding write and must return ⊥", o)
		case haveWrite && o.Val != lw.Val:
			return fmt.Errorf("check: read %v does not return most recent write %v", o, lw)
		}
	}
	return nil
}
