package check

import (
	"strings"
	"testing"

	"partialdsm/internal/model"
)

func w(writer, wseq int, v string, val int64) Event {
	return Event{Writer: writer, WSeq: wseq, Var: v, Val: model.IntValue(val)}
}

func r(v string, val int64) Event {
	return Event{IsRead: true, Var: v, Val: model.IntValue(val)}
}

func TestWitnessPRAMAccepts(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), r("x", 1), w(1, 0, "y", 2)},
		{w(1, 0, "y", 2), w(0, 0, "x", 1), r("y", 2), r("x", 1)},
	}
	if err := WitnessPRAM(2, logs); err != nil {
		t.Fatalf("valid logs rejected: %v", err)
	}
}

func TestWitnessPRAMRejectsSenderOrderViolation(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "x", 2)},
		{w(0, 1, "x", 2), w(0, 0, "x", 1)}, // sender 0's writes inverted
	}
	err := WitnessPRAM(2, logs)
	if err == nil || !strings.Contains(err.Error(), "sender order") {
		t.Fatalf("inversion not detected: %v", err)
	}
}

func TestWitnessPRAMRejectsStaleRead(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "x", 2), r("x", 1)},
		{},
	}
	if err := WitnessPRAM(2, logs); err == nil {
		t.Fatal("stale read not detected")
	}
}

func TestWitnessPRAMRejectsBottomAfterWrite(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), r("x", model.BottomInt64)},
	}
	if err := WitnessPRAM(1, logs); err == nil {
		t.Fatal("⊥-read after applied write not detected")
	}
}

func TestWitnessPRAMInitReadOK(t *testing.T) {
	logs := [][]Event{{r("x", model.BottomInt64)}}
	if err := WitnessPRAM(1, logs); err != nil {
		t.Fatalf("⊥-read before any write rejected: %v", err)
	}
}

func TestWitnessPRAMShapeErrors(t *testing.T) {
	if err := WitnessPRAM(2, [][]Event{{}}); err == nil {
		t.Error("log count mismatch not detected")
	}
	if err := WitnessPRAM(1, [][]Event{{w(3, 0, "x", 1)}}); err == nil {
		t.Error("out-of-range writer not detected")
	}
}

func TestWitnessSlowAllowsCrossVariableReorder(t *testing.T) {
	// Sender 0 wrote x#0 then y#1; receiver applies y first. Slow OK,
	// PRAM not.
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "y", 2)},
		{w(0, 1, "y", 2), w(0, 0, "x", 1), r("y", 2), r("x", 1)},
	}
	if err := WitnessSlow(2, logs); err != nil {
		t.Fatalf("slow witness rejected cross-variable reorder: %v", err)
	}
	if err := WitnessPRAM(2, logs); err == nil {
		t.Fatal("PRAM witness must reject cross-variable reorder")
	}
}

func TestWitnessSlowRejectsSameVariableReorder(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "x", 2)},
		{w(0, 1, "x", 2), w(0, 0, "x", 1)},
	}
	if err := WitnessSlow(2, logs); err == nil {
		t.Fatal("same-variable sender-order violation not detected")
	}
}

func TestWitnessSlowStaleRead(t *testing.T) {
	logs := [][]Event{
		{w(0, 0, "x", 1), r("x", 7)},
	}
	if err := WitnessSlow(1, logs); err == nil {
		t.Fatal("wrong read value not detected")
	}
	if err := WitnessSlow(2, [][]Event{{}}); err == nil {
		t.Error("log count mismatch not detected")
	}
}

func TestWitnessCausalAccepts(t *testing.T) {
	// p0: w(x)1 then w(y)2; p1 reads both. Apply orders respect co.
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		Read(1, "y", 2).
		Read(1, "x", 1).
		MustHistory()
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "y", 2)},
		{w(0, 0, "x", 1), w(0, 1, "y", 2), r("y", 2), r("x", 1)},
	}
	if err := WitnessCausal(h, logs); err != nil {
		t.Fatalf("valid causal logs rejected: %v", err)
	}
}

func TestWitnessCausalRejectsInvertedApply(t *testing.T) {
	h := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		MustHistory()
	logs := [][]Event{
		{w(0, 0, "x", 1), w(0, 1, "y", 2)},
		{w(0, 1, "y", 2), w(0, 0, "x", 1)}, // inverts w(x) ↦co w(y)
	}
	err := WitnessCausal(h, logs)
	if err == nil || !strings.Contains(err.Error(), "causal order") {
		t.Fatalf("causal inversion not detected: %v", err)
	}
}

func TestWitnessCausalCrossProcessDependency(t *testing.T) {
	// w0(x)1 ↦ro r1(x)1 ↦po w1(y)2, so w0(x)1 ↦co w1(y)2: node 2 must
	// not apply y before x.
	h := model.NewBuilder(3).
		Write(0, "x", 1).
		Read(1, "x", 1).
		Write(1, "y", 2).
		MustHistory()
	bad := [][]Event{
		{w(0, 0, "x", 1)},
		{w(0, 0, "x", 1), r("x", 1), w(1, 0, "y", 2)},
		{w(1, 0, "y", 2), w(0, 0, "x", 1)},
	}
	if err := WitnessCausal(h, bad); err == nil {
		t.Fatal("cross-process causal inversion not detected")
	}
	good := [][]Event{
		{w(0, 0, "x", 1)},
		{w(0, 0, "x", 1), r("x", 1), w(1, 0, "y", 2)},
		{w(0, 0, "x", 1), w(1, 0, "y", 2)},
	}
	if err := WitnessCausal(h, good); err != nil {
		t.Fatalf("valid logs rejected: %v", err)
	}
}

func TestWitnessCausalShapeErrors(t *testing.T) {
	h := model.NewBuilder(1).Write(0, "x", 1).MustHistory()
	if err := WitnessCausal(h, nil); err == nil {
		t.Error("log count mismatch not detected")
	}
	if err := WitnessCausal(h, [][]Event{{w(0, 5, "x", 1)}}); err == nil {
		t.Error("dangling write reference not detected")
	}
	if err := WitnessCausal(h, [][]Event{{w(0, 0, "x", 99)}}); err == nil {
		t.Error("value mismatch with history not detected")
	}
	if err := WitnessCausal(h, [][]Event{{w(0, 0, "x", 1), w(0, 0, "x", 1)}}); err == nil {
		t.Error("duplicate apply not detected")
	}
	if err := WitnessCausal(h, [][]Event{{w(0, 0, "x", 1), r("x", 2)}}); err == nil {
		t.Error("stale read not detected")
	}
}
