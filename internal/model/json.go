package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonOp is the wire form of a single operation. Reads of the initial
// value use "init": true instead of a value.
type jsonOp struct {
	Kind string `json:"op"`             // "r" or "w"
	Var  string `json:"var"`            // variable name
	Val  int64  `json:"val,omitempty"`  // value written / returned
	Init bool   `json:"init,omitempty"` // read returned ⊥
}

// jsonHistory is the wire form of a history: one operation list per
// process, in program order.
type jsonHistory struct {
	Processes [][]jsonOp `json:"processes"`
}

// MarshalJSON encodes the history as a per-process operation list.
func (h *History) MarshalJSON() ([]byte, error) {
	jh := jsonHistory{Processes: make([][]jsonOp, h.NumProcs())}
	for p := 0; p < h.NumProcs(); p++ {
		jh.Processes[p] = make([]jsonOp, 0, len(h.Local(p)))
		for _, id := range h.Local(p) {
			o := h.Op(id)
			jo := jsonOp{Kind: o.Kind.String(), Var: o.Var}
			if o.IsRead() && o.Val == Bottom {
				jo.Init = true
			} else {
				jo.Val = o.Val
			}
			jh.Processes[p] = append(jh.Processes[p], jo)
		}
	}
	return json.Marshal(jh)
}

// ParseHistory decodes a history from its JSON form.
func ParseHistory(r io.Reader) (*History, error) {
	var jh jsonHistory
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jh); err != nil {
		return nil, fmt.Errorf("model: decoding history: %w", err)
	}
	if len(jh.Processes) == 0 {
		return nil, fmt.Errorf("model: history has no processes")
	}
	b := NewBuilder(len(jh.Processes))
	for p, ops := range jh.Processes {
		for _, jo := range ops {
			switch jo.Kind {
			case "w":
				if jo.Init {
					return nil, fmt.Errorf("model: process %d: a write cannot be marked init", p)
				}
				b.Write(p, jo.Var, jo.Val)
			case "r":
				if jo.Init {
					b.ReadInit(p, jo.Var)
				} else {
					b.Read(p, jo.Var, jo.Val)
				}
			default:
				return nil, fmt.Errorf("model: process %d: unknown op kind %q (want \"r\" or \"w\")", p, jo.Kind)
			}
		}
	}
	return b.History()
}
