package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonOp is the wire form of a single operation. Reads of the initial
// value use "init": true instead of a value; the value columns are the
// shared scheme of JSONValue.
type jsonOp struct {
	Kind string `json:"op"`             // "r" or "w"
	Var  string `json:"var"`            // variable name
	Val  int64  `json:"val,omitempty"`  // 8-byte value, as its int64
	ValB []byte `json:"valb,omitempty"` // non-8-byte value, base64
	Val0 bool   `json:"val0,omitempty"` // zero-length value
	Init bool   `json:"init,omitempty"` // read returned ⊥
}

// JSONValue splits a value into the JSON columns shared by the
// history (jsonOp) and trace (eventJSON) formats: 8-byte values —
// everything the legacy int64 API produces — encode as their int64
// number ("val"), keeping the format byte-compatible with pre-v2
// files; zero-length values set the "val0" flag (omitempty would
// silently drop an empty "valb"); any other length travels
// base64-encoded in "valb".
func JSONValue(v Value) (val int64, valb []byte, val0 bool) {
	if len(v) == 0 {
		return 0, nil, true
	}
	if n, ok := v.Int64(); ok {
		return n, nil, false
	}
	return 0, v.Bytes(), false
}

// ValueFromJSON reconstructs a Value from its JSON columns, rejecting
// rows that set more than one column.
func ValueFromJSON(val int64, valb []byte, val0 bool) (Value, error) {
	switch {
	case val0:
		if val != 0 || len(valb) != 0 {
			return "", fmt.Errorf("model: value carries val0 together with val/valb")
		}
		return "", nil
	case valb != nil:
		if val != 0 {
			return "", fmt.Errorf("model: value carries both val and valb")
		}
		return ValueOf(valb), nil
	default:
		return IntValue(val), nil
	}
}

// jsonHistory is the wire form of a history: one operation list per
// process, in program order.
type jsonHistory struct {
	Processes [][]jsonOp `json:"processes"`
}

// MarshalJSON encodes the history as a per-process operation list.
func (h *History) MarshalJSON() ([]byte, error) {
	jh := jsonHistory{Processes: make([][]jsonOp, h.NumProcs())}
	for p := 0; p < h.NumProcs(); p++ {
		jh.Processes[p] = make([]jsonOp, 0, len(h.Local(p)))
		for _, id := range h.Local(p) {
			o := h.Op(id)
			jo := jsonOp{Kind: o.Kind.String(), Var: o.Var}
			if o.IsRead() && o.Val == Bottom {
				jo.Init = true
			} else {
				jo.Val, jo.ValB, jo.Val0 = JSONValue(o.Val)
			}
			jh.Processes[p] = append(jh.Processes[p], jo)
		}
	}
	return json.Marshal(jh)
}

// ParseHistory decodes a history from its JSON form.
func ParseHistory(r io.Reader) (*History, error) {
	var jh jsonHistory
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jh); err != nil {
		return nil, fmt.Errorf("model: decoding history: %w", err)
	}
	if len(jh.Processes) == 0 {
		return nil, fmt.Errorf("model: history has no processes")
	}
	b := NewBuilder(len(jh.Processes))
	for p, ops := range jh.Processes {
		for _, jo := range ops {
			switch jo.Kind {
			case "w":
				if jo.Init {
					return nil, fmt.Errorf("model: process %d: a write cannot be marked init", p)
				}
				v, err := ValueFromJSON(jo.Val, jo.ValB, jo.Val0)
				if err != nil {
					return nil, fmt.Errorf("%w (process %d, variable %s)", err, p, jo.Var)
				}
				b.WriteVal(p, jo.Var, v)
			case "r":
				if jo.Init {
					b.ReadInit(p, jo.Var)
				} else {
					v, err := ValueFromJSON(jo.Val, jo.ValB, jo.Val0)
					if err != nil {
						return nil, fmt.Errorf("%w (process %d, variable %s)", err, p, jo.Var)
					}
					b.ReadVal(p, jo.Var, v)
				}
			default:
				return nil, fmt.Errorf("model: process %d: unknown op kind %q (want \"r\" or \"w\")", p, jo.Kind)
			}
		}
	}
	return b.History()
}
