package model

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-capacity set of small non-negative integers, used to
// represent successor sets of order relations.
type Bitset []uint64

// NewBitset returns a bitset able to hold values in [0,n).
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set adds i to the set.
func (s Bitset) Set(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear removes i from the set.
func (s Bitset) Clear(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (s Bitset) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// Or adds every element of t to s.
func (s Bitset) Or(t Bitset) {
	for i := range s {
		s[i] |= t[i]
	}
}

// Count returns the number of elements in the set.
func (s Bitset) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of the set.
func (s Bitset) Clone() Bitset {
	c := make(Bitset, len(s))
	copy(c, s)
	return c
}

// ForEach calls f for every element of the set in increasing order.
func (s Bitset) ForEach(f func(i int)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Relation is a binary relation over the operations of a history,
// represented as successor bitsets: Has(a,b) means a is related to b
// (a precedes b). Relations need not be transitive (the PRAM relation is
// not), but all relations produced by this package are irreflexive and
// acyclic for consistent histories.
type Relation struct {
	n    int
	succ []Bitset
}

// NewRelation returns an empty relation over n operations.
func NewRelation(n int) *Relation {
	r := &Relation{n: n, succ: make([]Bitset, n)}
	for i := range r.succ {
		r.succ[i] = NewBitset(n)
	}
	return r
}

// Size returns the number of operations the relation ranges over.
func (r *Relation) Size() int { return r.n }

// Add records a ≺ b.
func (r *Relation) Add(a, b int) { r.succ[a].Set(b) }

// Has reports whether a ≺ b.
func (r *Relation) Has(a, b int) bool { return r.succ[a].Has(b) }

// Succ returns the successor set of a. The returned bitset must not be
// modified.
func (r *Relation) Succ(a int) Bitset { return r.succ[a] }

// Pairs returns all related pairs (a,b), in lexicographic order.
func (r *Relation) Pairs() [][2]int {
	var out [][2]int
	for a := 0; a < r.n; a++ {
		r.succ[a].ForEach(func(b int) { out = append(out, [2]int{a, b}) })
	}
	return out
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.n)
	for i := range r.succ {
		copy(c.succ[i], r.succ[i])
	}
	return c
}

// Union returns a new relation containing every pair of r and s.
func (r *Relation) Union(s *Relation) *Relation {
	if r.n != s.n {
		panic(fmt.Sprintf("model: union of relations over %d and %d operations", r.n, s.n))
	}
	u := r.Clone()
	for i := range u.succ {
		u.succ[i].Or(s.succ[i])
	}
	return u
}

// TransitiveClosure returns the transitive closure of r, computed with a
// bitset Floyd–Warshall pass (O(n²·n/64)).
func (r *Relation) TransitiveClosure() *Relation {
	c := r.Clone()
	for k := 0; k < c.n; k++ {
		sk := c.succ[k]
		for i := 0; i < c.n; i++ {
			if c.succ[i].Has(k) {
				c.succ[i].Or(sk)
			}
		}
	}
	return c
}

// IsAcyclic reports whether the relation (viewed as a directed graph)
// has no cycle.
func (r *Relation) IsAcyclic() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, r.n)
	// Iterative DFS with an explicit stack to avoid recursion limits on
	// large protocol traces.
	type frame struct {
		node int
		next int // next successor index candidate (scan position)
	}
	for start := 0; start < r.n; start++ {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for j := f.next; j < r.n; j++ {
				if !r.succ[f.node].Has(j) {
					continue
				}
				f.next = j + 1
				if color[j] == gray {
					return false
				}
				if color[j] == white {
					color[j] = gray
					stack = append(stack, frame{node: j})
					advanced = true
					break
				}
			}
			if !advanced {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return true
}

// Concurrent reports whether a and b are unrelated in both directions
// (the paper's o1 || o2 with respect to the relation).
func (r *Relation) Concurrent(a, b int) bool {
	return !r.Has(a, b) && !r.Has(b, a)
}

// ProgramOrder returns the union of the per-process total orders ↦_i
// (paper §2). Only consecutive-pair edges would suffice for reachability,
// but the full order is materialized so Has(a,b) answers ↦_i directly.
func ProgramOrder(h *History) *Relation {
	r := NewRelation(h.Len())
	for p := 0; p < h.NumProcs(); p++ {
		local := h.Local(p)
		for i := 0; i < len(local); i++ {
			for j := i + 1; j < len(local); j++ {
				r.Add(local[i], local[j])
			}
		}
	}
	return r
}

// ReadFrom computes the read-from order ↦_ro (paper §2): each read of a
// value v on x is related from the unique write of v to x. Reads of ⊥
// are related from no write. The history must be differentiated; an
// error is returned if a read returns a value never written to its
// variable.
func ReadFrom(h *History) (*Relation, error) {
	if err := h.CheckDifferentiated(); err != nil {
		return nil, err
	}
	type vv struct {
		v   string
		val Value
	}
	writer := make(map[vv]int)
	for _, o := range h.Ops() {
		if o.IsWrite() {
			writer[vv{o.Var, o.Val}] = o.ID
		}
	}
	r := NewRelation(h.Len())
	for _, o := range h.Ops() {
		if !o.IsRead() || o.Val == Bottom {
			continue
		}
		w, ok := writer[vv{o.Var, o.Val}]
		if !ok {
			return nil, fmt.Errorf("model: read %v returns a value never written to %s", o, o.Var)
		}
		r.Add(w, o.ID)
	}
	return r, nil
}

// CausalOrder returns ↦_co, the transitive closure of program order and
// read-from order (paper §2, after Ahamad et al.).
func CausalOrder(h *History) (*Relation, error) {
	rf, err := ReadFrom(h)
	if err != nil {
		return nil, err
	}
	return ProgramOrder(h).Union(rf).TransitiveClosure(), nil
}

// LazyProgramOrder returns →_li (paper Definition 5): within each local
// history, o1 →li o2 iff o1 is invoked before o2 and
//
//   - o1 is a read and o2 is a read on the same variable or a write on
//     any variable, or
//   - o1 is a write and o2 is an operation on the same variable,
//
// closed transitively within the process.
func LazyProgramOrder(h *History) *Relation {
	r := NewRelation(h.Len())
	for p := 0; p < h.NumProcs(); p++ {
		local := h.Local(p)
		for i := 0; i < len(local); i++ {
			o1 := h.Op(local[i])
			for j := i + 1; j < len(local); j++ {
				o2 := h.Op(local[j])
				switch {
				case o1.IsRead() && o2.IsRead() && o1.Var == o2.Var:
					r.Add(o1.ID, o2.ID)
				case o1.IsRead() && o2.IsWrite():
					r.Add(o1.ID, o2.ID)
				case o1.IsWrite() && o1.Var == o2.Var:
					r.Add(o1.ID, o2.ID)
				}
			}
		}
	}
	return r.TransitiveClosure()
}

// LazyCausalOrder returns ↦_lco (paper Definition 6): the transitive
// closure of lazy program order and read-from order.
func LazyCausalOrder(h *History) (*Relation, error) {
	rf, err := ReadFrom(h)
	if err != nil {
		return nil, err
	}
	return LazyProgramOrder(h).Union(rf).TransitiveClosure(), nil
}

// LazyWritesBefore returns →_lwb (paper Definition 8): o1 →lwb o2 when
// o1 = w_i(x)v, o2 = r_j(y)u, and there is a write o' = w_i(y)u with
// o1 →li o' (or o' = o1 itself, which yields the plain read-from pairs —
// following Ahamad et al.'s weak writes-before, of which this is the
// lazy variant).
func LazyWritesBefore(h *History) (*Relation, error) {
	if err := h.CheckDifferentiated(); err != nil {
		return nil, err
	}
	lpo := LazyProgramOrder(h)
	r := NewRelation(h.Len())
	// Index writes by (var, val) for read matching.
	type vv struct {
		v   string
		val Value
	}
	writer := make(map[vv]int)
	for _, o := range h.Ops() {
		if o.IsWrite() {
			writer[vv{o.Var, o.Val}] = o.ID
		}
	}
	for _, o2 := range h.Ops() {
		if !o2.IsRead() || o2.Val == Bottom {
			continue
		}
		wID, ok := writer[vv{o2.Var, o2.Val}]
		if !ok {
			return nil, fmt.Errorf("model: read %v returns a value never written to %s", o2, o2.Var)
		}
		wPrime := h.Op(wID)
		// Every write o1 of the same process with o1 →li o' (or o1 = o')
		// lazily writes before o2.
		for _, id := range h.Local(wPrime.Proc) {
			o1 := h.Op(id)
			if !o1.IsWrite() {
				continue
			}
			if o1.ID == wPrime.ID || lpo.Has(o1.ID, wPrime.ID) {
				r.Add(o1.ID, o2.ID)
			}
		}
	}
	return r, nil
}

// LazySemiCausalOrder returns ↦_lsc (paper Definition 9): the transitive
// closure of lazy program order and lazy writes-before order.
func LazySemiCausalOrder(h *History) (*Relation, error) {
	lwb, err := LazyWritesBefore(h)
	if err != nil {
		return nil, err
	}
	return LazyProgramOrder(h).Union(lwb).TransitiveClosure(), nil
}

// PRAMRelation returns ↦_pram (paper Definition 11): the union of
// program order and read-from order, without transitive closure.
func PRAMRelation(h *History) (*Relation, error) {
	rf, err := ReadFrom(h)
	if err != nil {
		return nil, err
	}
	return ProgramOrder(h).Union(rf), nil
}
