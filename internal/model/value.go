package model

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Value is the opaque value of a shared variable: an immutable byte
// string. The execution model never interprets values — the order
// relations and consistency checkers only compare them for equality —
// so registers may hold arbitrary-size objects, matching the cost
// models of storage-efficient shared-memory emulation where payload
// size, not word width, drives the communication volume.
//
// Value is a string type so it is comparable and usable as a map key;
// construct one with ValueOf (from bytes) or IntValue (from the legacy
// int64 word), never by casting user strings.
type Value string

// Bottom is the initial value ⊥ of every shared variable: a read that
// is not related to any write by read-from order must return it. It is
// the 8-byte big-endian encoding of BottomInt64, so the legacy int64
// API's ⊥ maps onto it exactly: IntValue(BottomInt64) == Bottom.
// Differentiated histories must not write it (CheckDifferentiated).
const Bottom Value = "\x80\x00\x00\x00\x00\x00\x00\x00"

// BottomInt64 is ⊥ seen through the legacy int64 value API.
const BottomInt64 int64 = math.MinInt64

// ValueOf returns the Value holding a copy of b.
func ValueOf(b []byte) Value { return Value(b) }

// IntValue returns the Value encoding v as 8 big-endian bytes — the
// representation the legacy Write/Read int64 API shims through.
func IntValue(v int64) Value {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return Value(b[:])
}

// Bytes returns a fresh copy of the value's bytes.
func (v Value) Bytes() []byte { return []byte(v) }

// Len returns the value's size in bytes.
func (v Value) Len() int { return len(v) }

// Int64 decodes the value as a legacy 8-byte word. ok is false when
// the value's length is not 8.
func (v Value) Int64() (val int64, ok bool) {
	if len(v) != 8 {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64([]byte(v))), true
}

// IsBottom reports whether the value is ⊥.
func (v Value) IsBottom() bool { return v == Bottom }

// String renders the value as the paper's notation expects: ⊥ for the
// initial value, the decimal int64 for 8-byte words (so histories over
// the legacy API read exactly as before), and a hex dump (truncated
// past 16 bytes) otherwise.
func (v Value) String() string {
	if v == Bottom {
		return "⊥"
	}
	if n, ok := v.Int64(); ok {
		return fmt.Sprintf("%d", n)
	}
	if len(v) > 16 {
		return fmt.Sprintf("0x%x…(%dB)", string(v[:16]), len(v))
	}
	return fmt.Sprintf("0x%x", string(v))
}
