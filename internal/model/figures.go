package model

// This file reconstructs the example histories of the paper's figures.
// Symbolic values map to integers: a=1, b=2, c=3, d=4, e=5.

// Symbolic values used by the paper's figures.
const (
	ValA int64 = 1
	ValB int64 = 2
	ValC int64 = 3
	ValD int64 = 4
	ValE int64 = 5
)

// Figure4History builds the history of Figure 4, which is lazy causal
// but not causal:
//
//	p1: w1(x)a  r1(x)a  w1(y)b
//	p2: r2(y)b  w2(y)c
//	p3: r3(y)c  r3(x)⊥
//
// The read r3(x)⊥ violates causal consistency (w1(x)a ↦co r3(x)⊥ via
// the chain through y), but under lazy program order r3(y)c and r3(x)⊥
// are unrelated, so the reads may be serialized in either order.
func Figure4History() *History {
	return NewBuilder(3).
		Write(0, "x", ValA).
		Read(0, "x", ValA).
		Write(0, "y", ValB).
		Read(1, "y", ValB).
		Write(1, "y", ValC).
		Read(2, "y", ValC).
		ReadInit(2, "x").
		MustHistory()
}

// Figure4PaperSerializations returns the serializations S1, S2, S3
// printed in the paper for Figure 4's history (op IDs of h in order),
// keyed by process. They respect the lazy causal order.
func Figure4PaperSerializations(h *History) map[int][]int {
	// Op IDs by construction order in Figure4History:
	// 0:w1(x)a 1:r1(x)a 2:w1(y)b 3:r2(y)b 4:w2(y)c 5:r3(y)c 6:r3(x)⊥
	return map[int][]int{
		0: {0, 1, 2, 4},    // S1 = w1(x)a r1(x)a w1(y)b w2(y)c
		1: {0, 2, 3, 4},    // S2 = w1(x)a w1(y)b r2(y)b w2(y)c
		2: {6, 0, 2, 4, 5}, // S3 = r3(x)⊥ w1(x)a w1(y)b w2(y)c r3(y)c
	}
}

// Figure5History builds the history of Figure 5, which is not lazy
// causal (an x-dependency chain forms along the x-hoop [p1,p2,p3] and
// p4 reads d before a):
//
//	p1: w1(x)a  r1(x)a  w1(y)b
//	p2: r2(y)b  w2(y)c
//	p3: r3(y)c  w3(x)d
//	p4: r4(x)d  r4(x)a
func Figure5History() *History {
	return NewBuilder(4).
		Write(0, "x", ValA).
		Read(0, "x", ValA).
		Write(0, "y", ValB).
		Read(1, "y", ValB).
		Write(1, "y", ValC).
		Read(2, "y", ValC).
		Write(2, "x", ValD).
		Read(3, "x", ValD).
		Read(3, "x", ValA).
		MustHistory()
}

// Figure6History builds the history of Figure 6, which is not lazy
// semi-causal:
//
//	p1: w1(x)a  r1(x)a  w1(y)b
//	p2: r2(y)b  w2(y)e  w2(z)c
//	p3: r3(z)c  w3(x)d
//	p4: r4(x)d  r4(x)a
//
// The chain w1(x)a ↦lsc w3(x)d forms through the lazy writes-before
// pairs (the paper annotates w1(x)a →lwb r2(y)b because of w1(y)b, then
// reaches r3(z)c via w2(z)c), so p4 reading d before a is inconsistent.
func Figure6History() *History {
	return NewBuilder(4).
		Write(0, "x", ValA).
		Read(0, "x", ValA).
		Write(0, "y", ValB).
		Read(1, "y", ValB).
		Write(1, "y", ValE).
		Write(1, "z", ValC).
		Read(2, "z", ValC).
		Write(2, "x", ValD).
		Read(3, "x", ValD).
		Read(3, "x", ValA).
		MustHistory()
}
