package model

import (
	"bytes"
	"testing"
)

// FuzzParseHistory checks that arbitrary input never panics the parser
// and that every successfully parsed history round-trips through JSON.
func FuzzParseHistory(f *testing.F) {
	seeds := []string{
		`{"processes": []}`,
		`{"processes": [[{"op":"w","var":"x","val":1}]]}`,
		`{"processes": [[{"op":"r","var":"x","init":true}],[{"op":"w","var":"x","val":-5}]]}`,
		`{"processes": [[{"op":"q","var":"x"}]]}`,
		`not json at all`,
		`{"processes": [[{"op":"w","var":"","val":0}]]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHistory(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := h.MarshalJSON()
		if err != nil {
			t.Fatalf("parsed history failed to marshal: %v", err)
		}
		h2, err := ParseHistory(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, out)
		}
		if h2.Len() != h.Len() || h2.NumProcs() != h.NumProcs() {
			t.Fatalf("round trip changed shape")
		}
		for i := 0; i < h.Len(); i++ {
			if h.Op(i) != h2.Op(i) {
				t.Fatalf("round trip changed op %d: %v vs %v", i, h.Op(i), h2.Op(i))
			}
		}
	})
}
