// Package model implements the shared-memory execution model of
// Hélary & Milani, "About the efficiency of partial replication to
// implement Distributed Shared Memory" (IRISA PI-1727, ICPP 2006), §2.
//
// A history is a collection of local histories, one per application
// process, where each local history is a sequence of read and write
// operations on shared variables. The package provides the order
// relations the paper builds on: program order, read-from order, causal
// order (Ahamad et al.), and the weakened relations introduced by the
// paper — lazy program order, lazy causal order, lazy writes-before,
// lazy semi-causal order — together with the PRAM relation.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind distinguishes read and write operations.
type OpKind uint8

const (
	// ReadOp is a read operation r_i(x)v returning value v.
	ReadOp OpKind = iota
	// WriteOp is a write operation w_i(x)v storing value v.
	WriteOp
)

// String returns "r" or "w".
func (k OpKind) String() string {
	if k == WriteOp {
		return "w"
	}
	return "r"
}

// Op is a single read or write operation in a history.
type Op struct {
	// ID is the operation's index in History.Ops. It is assigned by the
	// builder and is stable for the lifetime of the history.
	ID int
	// Proc is the identifier of the invoking application process
	// (0-based).
	Proc int
	// Seq is the operation's index within its process's local history
	// (0-based program-order position).
	Seq int
	// Kind says whether the operation reads or writes.
	Kind OpKind
	// Var is the shared variable accessed.
	Var string
	// Val is the opaque value written (writes) or returned (reads).
	// Reads that return the initial value carry Bottom.
	Val Value
}

// IsRead reports whether the operation is a read.
func (o Op) IsRead() bool { return o.Kind == ReadOp }

// IsWrite reports whether the operation is a write.
func (o Op) IsWrite() bool { return o.Kind == WriteOp }

// String renders the operation in the paper's notation, e.g. "w1(x)3".
func (o Op) String() string {
	return fmt.Sprintf("%s%d(%s)%s", o.Kind, o.Proc, o.Var, o.Val)
}

// History is a collection of local histories, one per application
// process. Operations are identified by their index in Ops.
type History struct {
	numProcs int
	ops      []Op
	locals   [][]int // locals[p] lists op IDs of process p in program order
}

// NumProcs returns the number of application processes.
func (h *History) NumProcs() int { return h.numProcs }

// Len returns the total number of operations in the history.
func (h *History) Len() int { return len(h.ops) }

// Op returns the operation with the given ID.
func (h *History) Op(id int) Op { return h.ops[id] }

// Ops returns all operations. The returned slice must not be modified.
func (h *History) Ops() []Op { return h.ops }

// Local returns the op IDs of process p in program order. The returned
// slice must not be modified.
func (h *History) Local(p int) []int { return h.locals[p] }

// Vars returns the sorted set of variables accessed in the history.
func (h *History) Vars() []string {
	seen := make(map[string]bool)
	for _, o := range h.ops {
		seen[o.Var] = true
	}
	vars := make([]string, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// WriteIDs returns the IDs of all write operations, in ID order.
func (h *History) WriteIDs() []int {
	ids := make([]int, 0, len(h.ops))
	for _, o := range h.ops {
		if o.IsWrite() {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// SubHistoryIPlusW returns the op IDs of H_{i+w}: all operations of
// process i plus all write operations of the history (paper §2), in ID
// order.
func (h *History) SubHistoryIPlusW(i int) []int {
	ids := make([]int, 0, len(h.ops))
	for _, o := range h.ops {
		if o.Proc == i || o.IsWrite() {
			ids = append(ids, o.ID)
		}
	}
	return ids
}

// CheckDifferentiated verifies that every write to a given variable
// writes a distinct value and that no write stores Bottom. The paper's
// examples implicitly assume this (values a, b, c, … are distinct); the
// read-from relation is only well defined under it.
func (h *History) CheckDifferentiated() error {
	type vv struct {
		v   string
		val Value
	}
	seen := make(map[vv]int)
	for _, o := range h.ops {
		if !o.IsWrite() {
			continue
		}
		if o.Val == Bottom {
			return fmt.Errorf("model: operation %v writes the reserved initial value ⊥", o)
		}
		key := vv{o.Var, o.Val}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("model: writes %v and %v store the same value to %s; histories must be differentiated",
				h.ops[prev], o, o.Var)
		}
		seen[key] = o.ID
	}
	return nil
}

// String renders the history one process per line, in the paper's style.
func (h *History) String() string {
	var b strings.Builder
	for p := 0; p < h.numProcs; p++ {
		fmt.Fprintf(&b, "p%d:", p)
		for _, id := range h.locals[p] {
			fmt.Fprintf(&b, " %v", h.ops[id])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Builder constructs histories incrementally. The zero value is not
// usable; create builders with NewBuilder.
type Builder struct {
	h   *History
	err error
}

// NewBuilder returns a builder for a history over numProcs application
// processes p0 … p(numProcs-1).
func NewBuilder(numProcs int) *Builder {
	if numProcs <= 0 {
		return &Builder{err: fmt.Errorf("model: history needs at least one process, got %d", numProcs)}
	}
	return &Builder{h: &History{
		numProcs: numProcs,
		locals:   make([][]int, numProcs),
	}}
}

func (b *Builder) add(p int, k OpKind, v string, val Value) *Builder {
	if b.err != nil {
		return b
	}
	if p < 0 || p >= b.h.numProcs {
		b.err = fmt.Errorf("model: process %d out of range [0,%d)", p, b.h.numProcs)
		return b
	}
	if v == "" {
		b.err = fmt.Errorf("model: empty variable name")
		return b
	}
	op := Op{
		ID:   len(b.h.ops),
		Proc: p,
		Seq:  len(b.h.locals[p]),
		Kind: k,
		Var:  v,
		Val:  val,
	}
	b.h.ops = append(b.h.ops, op)
	b.h.locals[p] = append(b.h.locals[p], op.ID)
	return b
}

// Write appends w_p(v)val to process p's local history, through the
// legacy int64 value representation (8 big-endian bytes).
func (b *Builder) Write(p int, v string, val int64) *Builder {
	return b.add(p, WriteOp, v, IntValue(val))
}

// WriteVal appends w_p(v)val with an opaque byte-string value.
func (b *Builder) WriteVal(p int, v string, val Value) *Builder {
	return b.add(p, WriteOp, v, val)
}

// Read appends r_p(v)val to process p's local history, through the
// legacy int64 value representation (8 big-endian bytes).
func (b *Builder) Read(p int, v string, val int64) *Builder {
	return b.add(p, ReadOp, v, IntValue(val))
}

// ReadVal appends r_p(v)val with an opaque byte-string value.
func (b *Builder) ReadVal(p int, v string, val Value) *Builder {
	return b.add(p, ReadOp, v, val)
}

// ReadInit appends a read of v returning the initial value ⊥.
func (b *Builder) ReadInit(p int, v string) *Builder {
	return b.add(p, ReadOp, v, Bottom)
}

// History returns the built history, or an error if any build step was
// invalid.
func (b *Builder) History() (*History, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.h, nil
}

// MustHistory is like History but panics on error. Intended for tests
// and for the paper's hand-written example histories.
func (b *Builder) MustHistory() *History {
	h, err := b.History()
	if err != nil {
		panic(err)
	}
	return h
}
