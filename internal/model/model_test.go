package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestBuilderAssignsIDsAndSeqs(t *testing.T) {
	h := NewBuilder(2).
		Write(0, "x", 1).
		Read(1, "x", 1).
		Write(0, "y", 2).
		MustHistory()
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if h.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d, want 2", h.NumProcs())
	}
	o := h.Op(2)
	if o.Proc != 0 || o.Seq != 1 || o.Var != "y" || !o.IsWrite() {
		t.Fatalf("op 2 = %+v, want w0(y)2 at seq 1", o)
	}
	if got := h.Local(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Local(0) = %v, want [0 2]", got)
	}
}

func TestBuilderRejectsBadProcess(t *testing.T) {
	if _, err := NewBuilder(2).Write(5, "x", 1).History(); err == nil {
		t.Fatal("expected error for out-of-range process")
	}
	if _, err := NewBuilder(0).History(); err == nil {
		t.Fatal("expected error for zero processes")
	}
	if _, err := NewBuilder(1).Write(0, "", 1).History(); err == nil {
		t.Fatal("expected error for empty variable name")
	}
}

func TestOpString(t *testing.T) {
	h := NewBuilder(1).Write(0, "x", 7).ReadInit(0, "y").MustHistory()
	if got := h.Op(0).String(); got != "w0(x)7" {
		t.Fatalf("write string = %q", got)
	}
	if got := h.Op(1).String(); got != "r0(y)⊥" {
		t.Fatalf("init read string = %q", got)
	}
}

func TestVarsSorted(t *testing.T) {
	h := NewBuilder(1).Write(0, "z", 1).Write(0, "a", 2).Write(0, "m", 3).MustHistory()
	got := h.Vars()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestSubHistoryIPlusW(t *testing.T) {
	h := NewBuilder(2).
		Write(0, "x", 1). // 0: write, in both
		Read(0, "x", 1).  // 1: p0 read, only in H_{0+w}
		Write(1, "y", 2). // 2: write, in both
		Read(1, "y", 2).  // 3: p1 read, only in H_{1+w}
		MustHistory()
	h0 := h.SubHistoryIPlusW(0)
	if len(h0) != 3 || h0[0] != 0 || h0[1] != 1 || h0[2] != 2 {
		t.Fatalf("H_{0+w} = %v, want [0 1 2]", h0)
	}
	h1 := h.SubHistoryIPlusW(1)
	if len(h1) != 3 || h1[0] != 0 || h1[1] != 2 || h1[2] != 3 {
		t.Fatalf("H_{1+w} = %v, want [0 2 3]", h1)
	}
}

func TestCheckDifferentiated(t *testing.T) {
	ok := NewBuilder(2).Write(0, "x", 1).Write(1, "x", 2).Write(0, "y", 1).MustHistory()
	if err := ok.CheckDifferentiated(); err != nil {
		t.Fatalf("differentiated history rejected: %v", err)
	}
	dup := NewBuilder(2).Write(0, "x", 1).Write(1, "x", 1).MustHistory()
	if err := dup.CheckDifferentiated(); err == nil {
		t.Fatal("duplicate write values not detected")
	}
	bot := NewBuilder(1).Write(0, "x", BottomInt64).MustHistory()
	if err := bot.CheckDifferentiated(); err == nil {
		t.Fatal("write of ⊥ not detected")
	}
}

func TestProgramOrder(t *testing.T) {
	h := NewBuilder(2).
		Write(0, "x", 1).
		Write(1, "y", 2).
		Read(0, "x", 1).
		MustHistory()
	po := ProgramOrder(h)
	if !po.Has(0, 2) {
		t.Error("w0(x)1 should precede r0(x)1 in program order")
	}
	if po.Has(0, 1) || po.Has(1, 0) || po.Has(1, 2) || po.Has(2, 1) {
		t.Error("operations of different processes must be unrelated by program order")
	}
}

func TestReadFrom(t *testing.T) {
	h := NewBuilder(2).
		Write(0, "x", 1).
		Read(1, "x", 1).
		ReadInit(1, "y").
		MustHistory()
	rf, err := ReadFrom(h)
	if err != nil {
		t.Fatal(err)
	}
	if !rf.Has(0, 1) {
		t.Error("read should be related from its write")
	}
	if rf.Succ(2).Count() != 0 {
		t.Error("⊥-read must have no read-from predecessor edge outgoing")
	}
	// The ⊥-read must not be a read-from target either.
	for a := 0; a < h.Len(); a++ {
		if rf.Has(a, 2) {
			t.Errorf("⊥-read has read-from predecessor %v", h.Op(a))
		}
	}
}

func TestReadFromRejectsUnwrittenValue(t *testing.T) {
	h := NewBuilder(1).Read(0, "x", 42).MustHistory()
	if _, err := ReadFrom(h); err == nil {
		t.Fatal("read of never-written value must be rejected")
	}
}

func TestCausalOrderTransitivity(t *testing.T) {
	// w0(x)1 ↦po w0(y)2 ↦ro r1(y)2 ↦po w1(z)3 — transitively w0(x)1 ↦co w1(z)3.
	h := NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		Read(1, "y", 2).
		Write(1, "z", 3).
		MustHistory()
	co, err := CausalOrder(h)
	if err != nil {
		t.Fatal(err)
	}
	if !co.Has(0, 3) {
		t.Error("causal order must be transitively closed across read-from")
	}
	if !co.Concurrent(0, 0) == false && co.Has(0, 0) {
		t.Error("causal order must be irreflexive on consistent histories")
	}
}

func TestLazyProgramOrderRules(t *testing.T) {
	// p0: r(x) r(y) r(x) w(y) w(x) w(z)
	h := NewBuilder(1).
		ReadInit(0, "x"). // 0
		ReadInit(0, "y"). // 1
		ReadInit(0, "x"). // 2
		Write(0, "y", 1). // 3
		Write(0, "x", 2). // 4
		Write(0, "z", 3). // 5
		MustHistory()
	lpo := LazyProgramOrder(h)
	cases := []struct {
		a, b int
		want bool
		why  string
	}{
		{0, 1, false, "read x then read y: unrelated"},
		{0, 2, true, "read x then read x: same variable"},
		{0, 3, true, "read then write any variable"},
		{1, 3, true, "read then write"},
		{3, 4, false, "write y then write x: different variables"},
		{4, 5, false, "write x then write z: different variables"},
		{3, 5, false, "write y then write z: different variables"},
		{0, 4, true, "read x then write x, also read→write any"},
		{2, 5, true, "read then write"},
	}
	for _, c := range cases {
		if got := lpo.Has(c.a, c.b); got != c.want {
			t.Errorf("lpo(%v,%v) = %v, want %v (%s)", h.Op(c.a), h.Op(c.b), got, c.want, c.why)
		}
	}
}

func TestLazyProgramOrderWriteReadSameVar(t *testing.T) {
	h := NewBuilder(1).
		Write(0, "x", 1). // 0
		ReadInit(0, "y"). // 1 (⊥-read fine: different var)
		Read(0, "x", 1).  // 2
		Write(0, "x", 2). // 3
		MustHistory()
	lpo := LazyProgramOrder(h)
	if !lpo.Has(0, 2) {
		t.Error("write x then read x must be lazily ordered")
	}
	if !lpo.Has(0, 3) {
		t.Error("write x then write x must be lazily ordered")
	}
	if lpo.Has(0, 1) {
		t.Error("write x then read y must not be lazily ordered")
	}
	// Transitivity within the process: w(x) →li r(x) →li w(x).
	if !lpo.Has(2, 3) || !lpo.Has(0, 3) {
		t.Error("lazy program order must be transitively closed")
	}
}

func TestLazyCausalWeakerThanCausal(t *testing.T) {
	h := Figure4History()
	co, err := CausalOrder(h)
	if err != nil {
		t.Fatal(err)
	}
	lco, err := LazyCausalOrder(h)
	if err != nil {
		t.Fatal(err)
	}
	// lco ⊆ co.
	for _, pair := range lco.Pairs() {
		if !co.Has(pair[0], pair[1]) {
			t.Errorf("lazy causal pair (%v,%v) missing from causal order",
				h.Op(pair[0]), h.Op(pair[1]))
		}
	}
	// Figure 4's key fact: r3(y)c ↦co r3(x)⊥ but r3(y)c ||lco r3(x)⊥.
	const rYC, rXBot = 5, 6
	if !co.Has(rYC, rXBot) {
		t.Error("r3(y)c must causally precede r3(x)⊥ (program order)")
	}
	if !lco.Concurrent(rYC, rXBot) {
		t.Error("r3(y)c and r3(x)⊥ must be concurrent under lazy causal order")
	}
}

func TestLazyWritesBeforeIncludesReadFrom(t *testing.T) {
	h := NewBuilder(2).Write(0, "x", 1).Read(1, "x", 1).MustHistory()
	lwb, err := LazyWritesBefore(h)
	if err != nil {
		t.Fatal(err)
	}
	if !lwb.Has(0, 1) {
		t.Error("lazy writes-before must include direct read-from pairs")
	}
}

func TestLazyWritesBeforeFigure6Pair(t *testing.T) {
	h := Figure6History()
	// IDs: 0:w1(x)a 1:r1(x)a 2:w1(y)b 3:r2(y)b 4:w2(y)e 5:w2(z)c 6:r3(z)c 7:w3(x)d 8:r4(x)d 9:r4(x)a
	lwb, err := LazyWritesBefore(h)
	if err != nil {
		t.Fatal(err)
	}
	// Paper annotation: w1(x)a →lwb r2(y)b because of w1(y)b
	// (w1(x)a →li r1(x)a →li w1(y)b).
	if !lwb.Has(0, 3) {
		t.Error("w1(x)a →lwb r2(y)b expected (because of w1(y)b)")
	}
	lsc, err := LazySemiCausalOrder(h)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's conclusion: w1(x)a ↦lsc w3(x)d.
	if !lsc.Has(0, 7) {
		t.Error("w1(x)a ↦lsc w3(x)d expected (Figure 6 chain)")
	}
}

func TestLazySemiCausalWeakerThanLazyCausal(t *testing.T) {
	for _, h := range []*History{Figure4History(), Figure5History(), Figure6History()} {
		lco, err := LazyCausalOrder(h)
		if err != nil {
			t.Fatal(err)
		}
		lsc, err := LazySemiCausalOrder(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range lsc.Pairs() {
			if !lco.Has(pair[0], pair[1]) {
				t.Errorf("lsc pair (%v,%v) missing from lco", h.Op(pair[0]), h.Op(pair[1]))
			}
		}
	}
}

func TestPRAMRelationNotTransitive(t *testing.T) {
	// w0(x)1 ↦ro r1(x)1 ↦po w1(y)2: pram relates the pairs but not the ends.
	h := NewBuilder(2).
		Write(0, "x", 1).
		Read(1, "x", 1).
		Write(1, "y", 2).
		MustHistory()
	pram, err := PRAMRelation(h)
	if err != nil {
		t.Fatal(err)
	}
	if !pram.Has(0, 1) || !pram.Has(1, 2) {
		t.Fatal("pram must contain program order and read-from pairs")
	}
	if pram.Has(0, 2) {
		t.Error("pram must not be transitively closed")
	}
}

func TestRelationAcyclicity(t *testing.T) {
	r := NewRelation(3)
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.IsAcyclic() {
		t.Error("chain must be acyclic")
	}
	r.Add(2, 0)
	if r.IsAcyclic() {
		t.Error("cycle not detected")
	}
}

func TestBitsetOps(t *testing.T) {
	s := NewBitset(130)
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if !s.Has(0) || !s.Has(64) || !s.Has(129) || s.Has(1) {
		t.Fatal("set/has broken")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Fatal("clear broken")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("ForEach = %v", got)
	}
	c := s.Clone()
	c.Set(5)
	if s.Has(5) {
		t.Fatal("clone aliases original")
	}
}

func TestTransitiveClosure(t *testing.T) {
	r := NewRelation(4)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	tc := r.TransitiveClosure()
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !tc.Has(pair[0], pair[1]) {
			t.Errorf("closure missing (%d,%d)", pair[0], pair[1])
		}
	}
	if r.Has(0, 2) {
		t.Error("TransitiveClosure must not mutate the receiver")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := Figure6History()
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ParseHistory(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != h.Len() || h2.NumProcs() != h.NumProcs() {
		t.Fatalf("round trip changed shape: %d/%d ops, %d/%d procs",
			h2.Len(), h.Len(), h2.NumProcs(), h.NumProcs())
	}
	for i := 0; i < h.Len(); i++ {
		a, b := h.Op(i), h2.Op(i)
		if a != b {
			t.Fatalf("op %d: %+v != %+v", i, a, b)
		}
	}
}

func TestParseHistoryErrors(t *testing.T) {
	cases := []string{
		`{"processes": []}`,
		`{"processes": [[{"op":"q","var":"x"}]]}`,
		`{"processes": [[{"op":"w","var":"x","init":true}]]}`,
		`{bogus`,
	}
	for _, c := range cases {
		if _, err := ParseHistory(strings.NewReader(c)); err == nil {
			t.Errorf("ParseHistory(%q) succeeded, want error", c)
		}
	}
}

func TestHistoryString(t *testing.T) {
	h := Figure4History()
	s := h.String()
	for _, want := range []string{"p0:", "w0(x)1", "r2(x)⊥"} {
		if !strings.Contains(s, want) {
			t.Errorf("History.String() missing %q:\n%s", want, s)
		}
	}
}
