// Package cmdutil holds small helpers shared by the cmd tools —
// command-line policy that does not belong in the partialdsm library
// surface.
package cmdutil

import (
	"flag"
	"fmt"

	"partialdsm"
)

// ResolveLatencyDist resolves the -virtual-latency / -latency-dist
// flag pair the cmd tools share. distFlag names the distribution flag
// on fs: setting it explicitly without virtual latency is refused (the
// run would silently use the real-sleep uniform mode), and with
// virtual latency the value is validated via
// partialdsm.ParseLatencyDistFlag — up front, so a typo or the
// flag-unusable per-link "matrix" distribution never surfaces as a
// confusing cluster-construction error. Without virtual latency the
// zero LatencyDist is returned, matching Config's real-sleep contract.
func ResolveLatencyDist(fs *flag.FlagSet, distFlag string, virtual bool, dist string) (partialdsm.LatencyDist, error) {
	if !virtual {
		set := false
		fs.Visit(func(f *flag.Flag) { set = set || f.Name == distFlag })
		if set {
			return "", fmt.Errorf("-%s requires -virtual-latency", distFlag)
		}
		return "", nil
	}
	return partialdsm.ParseLatencyDistFlag(dist)
}
