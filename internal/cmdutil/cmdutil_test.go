package cmdutil

import (
	"flag"
	"io"
	"strings"
	"testing"

	"partialdsm"
)

func TestResolveLatencyDist(t *testing.T) {
	parse := func(args ...string) *flag.FlagSet {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		fs.String("latency-dist", "uniform", "")
		fs.Bool("virtual-latency", false, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs
	}

	// Default flag value, no virtual latency: silently no distribution.
	if d, err := ResolveLatencyDist(parse(), "latency-dist", false, "uniform"); err != nil || d != "" {
		t.Errorf("default without virtual = %q, %v; want zero dist", d, err)
	}
	// Explicit flag without virtual latency: refused.
	if _, err := ResolveLatencyDist(parse("-latency-dist", "heavytail"), "latency-dist", false, "heavytail"); err == nil ||
		!strings.Contains(err.Error(), "requires -virtual-latency") {
		t.Errorf("explicit dist without virtual = %v, want refusal", err)
	}
	// Virtual latency: names validated, matrix and typos rejected.
	if d, err := ResolveLatencyDist(parse(), "latency-dist", true, "heavytail"); err != nil || d != partialdsm.LatencyHeavyTail {
		t.Errorf("heavytail = %q, %v", d, err)
	}
	for _, bad := range []string{"matrix", "zipf"} {
		if _, err := ResolveLatencyDist(parse(), "latency-dist", true, bad); err == nil {
			t.Errorf("%s accepted under virtual latency", bad)
		}
	}
}
