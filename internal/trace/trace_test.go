package trace

import (
	"bytes"
	"strings"
	"testing"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
)

func sampleHistory(t *testing.T) *model.History {
	t.Helper()
	return model.NewBuilder(2).
		Write(0, "x", 1).
		Read(1, "x", 1).
		ReadInit(1, "y").
		MustHistory()
}

func sampleLogs() [][]check.Event {
	return [][]check.Event{
		{{Writer: 0, WSeq: 0, Var: "x", Val: model.IntValue(1)}},
		{
			{Writer: 0, WSeq: 0, Var: "x", Val: model.IntValue(1)},
			{IsRead: true, Var: "x", Val: model.IntValue(1)},
			{IsRead: true, Var: "y", Val: model.Bottom},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := sampleHistory(t)
	placement := [][]string{{"x"}, {"x", "y"}}
	data, err := Encode("pram", placement, h, sampleLogs())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Consistency != "pram" || len(tr.Placement) != 2 {
		t.Fatalf("metadata lost: %+v", tr)
	}
	h2, err := tr.HistoryModel()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != h.Len() {
		t.Fatalf("history shape changed: %d vs %d", h2.Len(), h.Len())
	}
	logs := tr.EventLogs()
	if len(logs) != 2 || len(logs[1]) != 3 {
		t.Fatalf("logs shape changed: %v", logs)
	}
	if logs[1][2].Val != model.Bottom {
		t.Error("⊥ read value lost in round trip")
	}
	if logs[0][0] != sampleLogs()[0][0] {
		t.Errorf("apply event changed: %+v", logs[0][0])
	}
}

func TestVerifyPRAMTrace(t *testing.T) {
	h := sampleHistory(t)
	data, err := Encode("pram", [][]string{{"x"}, {"x", "y"}}, h, sampleLogs())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestVerifyDetectsViolation(t *testing.T) {
	h := sampleHistory(t)
	badLogs := sampleLogs()
	badLogs[1][1].Val = model.IntValue(99) // read of a value never applied
	data, err := Encode("pram", [][]string{{"x"}, {"x", "y"}}, h, badLogs)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := Decode(bytes.NewReader(data))
	if err := tr.Verify(); err == nil {
		t.Fatal("stale read in trace not detected")
	}
}

func TestVerifyCausalTrace(t *testing.T) {
	h := sampleHistory(t)
	data, err := Encode("causal-partial", [][]string{{"x"}, {"x", "y"}}, h, sampleLogs())
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := Decode(bytes.NewReader(data))
	if err := tr.Verify(); err != nil {
		t.Fatalf("valid causal trace rejected: %v", err)
	}
}

func TestVerifyUnknownConsistency(t *testing.T) {
	h := sampleHistory(t)
	data, err := Encode("bogus", [][]string{{"x"}, {"x", "y"}}, h, sampleLogs())
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := Decode(bytes.NewReader(data))
	if err := tr.Verify(); err == nil {
		t.Fatal("unknown consistency must fail verification")
	}
}

func TestEncodeShapeMismatch(t *testing.T) {
	h := sampleHistory(t)
	if _, err := Encode("pram", [][]string{{"x"}}, h, sampleLogs()); err == nil {
		t.Error("placement shape mismatch not detected")
	}
	if _, err := Encode("pram", [][]string{{"x"}, {"y"}}, h, nil); err == nil {
		t.Error("log shape mismatch not detected")
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, c := range []string{
		`{nope`,
		`{"consistency":"pram","placement":[],"history":{},"logs":[]}`,
		`{"consistency":"pram","placement":[["x"]],"history":{},"logs":[[],[]]}`,
	} {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", c)
		}
	}
}
