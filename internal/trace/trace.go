// Package trace defines a portable JSON snapshot of a DSM execution —
// the global history, the per-node apply/read event logs, the variable
// placement and the consistency configuration — so executions can be
// archived and verified offline (cmd/dsm-check -trace).
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
	"partialdsm/internal/sharegraph"
)

// eventJSON is the wire form of one check.Event. The value columns
// are the shared scheme of model.JSONValue: 8-byte values (all the
// legacy int64 API produces) encode as their int64 number in "val",
// keeping pre-v2 snapshots readable and new snapshots of int64-valued
// runs byte-compatible; zero-length values set "val0"; other lengths
// travel base64-encoded in "valb".
type eventJSON struct {
	Read   bool   `json:"read,omitempty"`
	Writer int    `json:"writer,omitempty"`
	WSeq   int    `json:"wseq,omitempty"`
	Var    string `json:"var"`
	Val    int64  `json:"val,omitempty"`  // 8-byte value, as its int64
	ValB   []byte `json:"valb,omitempty"` // non-8-byte value, base64
	Val0   bool   `json:"val0,omitempty"` // zero-length value
	Init   bool   `json:"init,omitempty"` // Val is ⊥
}

// encodeVal fills the value columns.
func (je *eventJSON) encodeVal(v model.Value) {
	je.Val, je.ValB, je.Val0 = model.JSONValue(v)
}

// decodeVal reconstructs the event value (Init already handled);
// malformed rows decode as the legacy word so EventLogs stays
// total — Decode validates shape, witness validation catches the rest.
func (je *eventJSON) decodeVal() model.Value {
	v, err := model.ValueFromJSON(je.Val, je.ValB, je.Val0)
	if err != nil {
		return model.IntValue(je.Val)
	}
	return v
}

// Trace is a portable snapshot of one execution.
type Trace struct {
	// Consistency names the protocol that produced the execution (one
	// of the partialdsm.Consistency values).
	Consistency string `json:"consistency"`
	// Placement lists the variables each node replicates.
	Placement [][]string `json:"placement"`
	// History is the global history in model JSON form.
	History json.RawMessage `json:"history"`
	// Logs holds one event log per node.
	Logs [][]eventJSON `json:"logs"`
}

// Encode builds the JSON snapshot.
func Encode(consistency string, placement [][]string, h *model.History, logs [][]check.Event) ([]byte, error) {
	if len(placement) != h.NumProcs() || len(logs) != h.NumProcs() {
		return nil, fmt.Errorf("trace: %d placement rows and %d logs for %d processes",
			len(placement), len(logs), h.NumProcs())
	}
	hJSON, err := h.MarshalJSON()
	if err != nil {
		return nil, err
	}
	t := Trace{
		Consistency: consistency,
		Placement:   placement,
		History:     hJSON,
		Logs:        make([][]eventJSON, len(logs)),
	}
	for i, log := range logs {
		t.Logs[i] = make([]eventJSON, 0, len(log))
		for _, e := range log {
			je := eventJSON{Read: e.IsRead, Var: e.Var}
			if e.IsRead {
				if e.Val == model.Bottom {
					je.Init = true
				} else {
					je.encodeVal(e.Val)
				}
			} else {
				je.Writer = e.Writer
				je.WSeq = e.WSeq
				je.encodeVal(e.Val)
			}
			t.Logs[i] = append(t.Logs[i], je)
		}
	}
	return json.MarshalIndent(t, "", " ")
}

// Decode parses a snapshot.
func Decode(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	if len(t.Placement) == 0 {
		return nil, fmt.Errorf("trace: no placement")
	}
	if len(t.Logs) != len(t.Placement) {
		return nil, fmt.Errorf("trace: %d logs for %d nodes", len(t.Logs), len(t.Placement))
	}
	return &t, nil
}

// HistoryModel materializes the embedded global history.
func (t *Trace) HistoryModel() (*model.History, error) {
	return model.ParseHistory(bytes.NewReader(t.History))
}

// EventLogs reconstructs the per-node event logs.
func (t *Trace) EventLogs() [][]check.Event {
	out := make([][]check.Event, len(t.Logs))
	for i, log := range t.Logs {
		out[i] = make([]check.Event, 0, len(log))
		for _, je := range log {
			e := check.Event{IsRead: je.Read, Var: je.Var}
			if je.Read {
				if je.Init {
					e.Val = model.Bottom
				} else {
					e.Val = je.decodeVal()
				}
			} else {
				e.Writer = je.Writer
				e.WSeq = je.WSeq
				e.Val = je.decodeVal()
			}
			out[i] = append(out[i], e)
		}
	}
	return out
}

// PlacementModel rebuilds the sharegraph placement.
func (t *Trace) PlacementModel() (*sharegraph.Placement, error) {
	pl := sharegraph.NewPlacement(len(t.Placement))
	for p, vars := range t.Placement {
		for _, v := range vars {
			if v == "" {
				return nil, fmt.Errorf("trace: node %d has an empty variable name", p)
			}
		}
		pl.Assign(p, vars...)
	}
	return pl, nil
}

// Verify validates the snapshot against the witness conditions of its
// consistency configuration, exactly as Cluster.VerifyWitness does for
// a live cluster.
func (t *Trace) Verify() error {
	logs := t.EventLogs()
	n := len(t.Placement)
	switch t.Consistency {
	case "pram", "sequential":
		return check.WitnessPRAM(n, logs)
	case "slow":
		return check.WitnessSlow(n, logs)
	case "cache":
		return check.WitnessCache(n, logs)
	case "atomic":
		pl, err := t.PlacementModel()
		if err != nil {
			return err
		}
		return check.WitnessAtomic(n, logs, func(x string) int {
			cx := pl.Clique(x)
			if len(cx) == 0 {
				return -1
			}
			return cx[0]
		})
	case "causal-full", "causal-partial", "causal-hoop-aware":
		h, err := t.HistoryModel()
		if err != nil {
			return err
		}
		return check.WitnessCausal(h, logs)
	default:
		return fmt.Errorf("trace: no witness validator for consistency %q", t.Consistency)
	}
}
