package sharegraph

import (
	"fmt"
	"sort"
)

// Hoop is an x-hoop (Definition 3): a path [p_a = p_0, …, p_k = p_b] in
// the share graph with p_a ≠ p_b ∈ C(x), interior vertices outside
// C(x), and each consecutive pair sharing a variable different from x.
type Hoop struct {
	Var  string
	Path []int // vertices, endpoints in C(Var)
}

// String renders the hoop as "x-hoop [p0 p3 p7]".
func (h Hoop) String() string {
	return fmt.Sprintf("%s-hoop %v", h.Var, h.Path)
}

// Hoops enumerates all x-hoops of the placement's share graph, up to
// the optional limit (0 means unlimited). Hoops are simple paths; each
// is reported once in a canonical direction (smaller endpoint first).
// Enumeration can be exponential in the graph size — the paper itself
// notes that "enumerating all the hoops can be very long" (§3.3); use
// XRelevant for the linear-time relevance decision.
func (pl *Placement) Hoops(x string, limit int) []Hoop {
	cx := pl.Clique(x)
	inCx := make([]bool, pl.numProcs)
	for _, p := range cx {
		inCx[p] = true
	}
	var out []Hoop
	var path []int
	used := make([]bool, pl.numProcs)

	var extend func(cur, start int) bool // returns false when limit hit
	extend = func(cur, start int) bool {
		for next := 0; next < pl.numProcs; next++ {
			if used[next] || !pl.EdgeSharingOtherThan(cur, next, x) {
				continue
			}
			if inCx[next] {
				// A hoop endpoint; canonical direction: start < end, or
				// equal-length reversal avoided by requiring start < next.
				if next > start {
					hoop := Hoop{Var: x, Path: append(append([]int{}, path...), next)}
					out = append(out, hoop)
					if limit > 0 && len(out) >= limit {
						return false
					}
				}
				continue // endpoints cannot be interior vertices
			}
			used[next] = true
			path = append(path, next)
			ok := extend(next, start)
			path = path[:len(path)-1]
			used[next] = false
			if !ok {
				return false
			}
		}
		return true
	}

	for _, a := range cx {
		path = append(path[:0], a)
		used[a] = true
		if !extend(a, a) {
			used[a] = false
			break
		}
		used[a] = false
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Path, out[j].Path
		if len(pi) != len(pj) {
			return len(pi) < len(pj)
		}
		for k := range pi {
			if pi[k] != pj[k] {
				return pi[k] < pj[k]
			}
		}
		return false
	})
	return out
}

// XRelevant returns the sorted set of x-relevant processes per
// Theorem 1: C(x) together with every process on some x-hoop. It runs
// in O(V+E) via a biconnectivity argument: build the auxiliary graph H
// containing the vertices outside C(x) (with their share-graph edges),
// the members of C(x) adjacent to them (as path terminals, with their
// edges into V∖C(x) only), and a virtual vertex T adjacent to every
// such terminal. A vertex p ∉ C(x) lies on an x-hoop iff p and T lie in
// a common biconnected block of H: a simple cycle through T and p
// decomposes, at its anchor vertices, into segments whose interiors
// avoid C(x) — each segment is a hoop — and conversely any hoop through
// p closes into such a cycle via T.
//
// (Edges incident to a vertex outside C(x) automatically share a
// variable ≠ x, since that vertex does not hold x. Hoops of length one
// add no vertices beyond C(x) and need no special handling.)
func (pl *Placement) XRelevant(x string) []int {
	cx := pl.Clique(x)
	inCx := make([]bool, pl.numProcs)
	for _, p := range cx {
		inCx[p] = true
	}
	// Auxiliary graph over vertices 0..numProcs (T = numProcs).
	T := pl.numProcs
	adj := make([][]int, pl.numProcs+1)
	addEdge := func(u, v int) {
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for p := 0; p < pl.numProcs; p++ {
		if inCx[p] {
			continue
		}
		for q := p + 1; q < pl.numProcs; q++ {
			if !inCx[q] && pl.Edge(p, q) {
				addEdge(p, q)
			}
		}
	}
	for _, c := range cx {
		anchored := false
		for q := 0; q < pl.numProcs; q++ {
			if !inCx[q] && pl.EdgeSharingOtherThan(c, q, x) {
				addEdge(c, q)
				anchored = true
			}
		}
		if anchored {
			addEdge(T, c)
		}
	}

	// Hopcroft–Tarjan biconnected components (iterative DFS), collecting
	// for each block its vertex set; mark vertices sharing a ≥2-edge
	// block with T.
	n := pl.numProcs + 1
	num := make([]int, n) // DFS numbers, 0 = unvisited
	low := make([]int, n)
	iterIdx := make([]int, n)
	parentOf := make([]int, n)
	for i := range parentOf {
		parentOf[i] = -1
	}
	type edge struct{ u, v int }
	var estack []edge
	counter := 0
	withT := make([]bool, n)

	popBlock := func(u, v int) {
		// Pop edges up to and including (u,v); that edge set is a block.
		var verts []int
		seen := make(map[int]bool)
		edges := 0
		for len(estack) > 0 {
			e := estack[len(estack)-1]
			estack = estack[:len(estack)-1]
			edges++
			for _, w := range []int{e.u, e.v} {
				if !seen[w] {
					seen[w] = true
					verts = append(verts, w)
				}
			}
			if e.u == u && e.v == v {
				break
			}
		}
		if edges >= 2 && seen[T] {
			for _, w := range verts {
				withT[w] = true
			}
		}
	}

	for start := 0; start < n; start++ {
		if num[start] != 0 || len(adj[start]) == 0 {
			continue
		}
		counter++
		num[start] = counter
		low[start] = counter
		stack := []int{start}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			if iterIdx[u] < len(adj[u]) {
				v := adj[u][iterIdx[u]]
				iterIdx[u]++
				if num[v] == 0 {
					estack = append(estack, edge{u, v})
					parentOf[v] = u
					counter++
					num[v] = counter
					low[v] = counter
					stack = append(stack, v)
				} else if v != parentOf[u] && num[v] < num[u] {
					estack = append(estack, edge{u, v})
					if num[v] < low[u] {
						low[u] = num[v]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if p := parentOf[u]; p != -1 {
					if low[u] < low[p] {
						low[p] = low[u]
					}
					if low[u] >= num[p] {
						popBlock(p, u) // p is an articulation point (or root): block rooted here
					}
				}
			}
		}
	}

	var out []int
	for p := 0; p < pl.numProcs; p++ {
		if inCx[p] || withT[p] {
			out = append(out, p)
		}
	}
	return out
}

// XRelevantByEnumeration computes the x-relevant set by enumerating all
// x-hoops — exponential, used to cross-check XRelevant in tests.
func (pl *Placement) XRelevantByEnumeration(x string) []int {
	relevant := make(map[int]bool)
	for _, p := range pl.Clique(x) {
		relevant[p] = true
	}
	for _, h := range pl.Hoops(x, 0) {
		for _, p := range h.Path {
			relevant[p] = true
		}
	}
	out := make([]int, 0, len(relevant))
	for p := range relevant {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
