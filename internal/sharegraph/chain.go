package sharegraph

import (
	"fmt"

	"partialdsm/internal/model"
)

// ChainSpec controls the canonical x-dependency-chain history built by
// DependencyChainHistory.
type ChainSpec struct {
	// Hoop is the x-hoop along which the chain forms. Path endpoints
	// must hold Var; interior vertices must not.
	Hoop Hoop
	// FinalIsWrite selects o_b(x): a write when true, a read otherwise.
	FinalIsWrite bool
	// FinalReadsStale makes the final read return ⊥ instead of the
	// chained value — the causally forbidden outcome used to demonstrate
	// Theorem 1 (ignored when FinalIsWrite).
	FinalReadsStale bool
}

// DependencyChainHistory constructs the canonical history of Figure 3:
// along the hoop [p_a = p_0, …, p_k = p_b],
//
//	p_0: w_a(x)v, w_a(x_1)v_1
//	p_h: r_h(x_h)v_h, w_h(x_{h+1})v_{h+1}      (1 ≤ h ≤ k-1)
//	p_b: r_b(x_k)v_k, o_b(x)
//
// where x_h is a variable shared by p_{h-1} and p_h other than x. The
// resulting history includes an x-dependency chain from w_a(x)v to
// o_b(x) (Definition 4). The placement supplies the intermediate
// variables; an error is returned if the hoop is not valid for it.
func (pl *Placement) DependencyChainHistory(spec ChainSpec) (*model.History, error) {
	hoop := spec.Hoop
	x := hoop.Var
	if len(hoop.Path) < 2 {
		return nil, fmt.Errorf("sharegraph: hoop path %v too short", hoop.Path)
	}
	a, b := hoop.Path[0], hoop.Path[len(hoop.Path)-1]
	if !pl.Holds(a, x) || !pl.Holds(b, x) {
		return nil, fmt.Errorf("sharegraph: hoop endpoints %d,%d must hold %s", a, b, x)
	}
	for _, p := range hoop.Path[1 : len(hoop.Path)-1] {
		if pl.Holds(p, x) {
			return nil, fmt.Errorf("sharegraph: interior vertex %d of hoop holds %s", p, x)
		}
	}
	// Pick the intermediate variable of each hop.
	links := make([]string, len(hoop.Path)-1)
	for h := 1; h < len(hoop.Path); h++ {
		var link string
		for _, v := range pl.SharedVars(hoop.Path[h-1], hoop.Path[h]) {
			if v != x {
				link = v
				break
			}
		}
		if link == "" {
			return nil, fmt.Errorf("sharegraph: vertices %d and %d share no variable other than %s",
				hoop.Path[h-1], hoop.Path[h], x)
		}
		links[h-1] = link
	}

	bld := model.NewBuilder(pl.numProcs)
	const v0 int64 = 100 // value v written to x
	bld.Write(a, x, v0)
	for h := 0; h < len(links); h++ {
		val := int64(101 + h) // v_{h+1}
		writer := hoop.Path[h]
		bld.Write(writer, links[h], val)
		reader := hoop.Path[h+1]
		bld.Read(reader, links[h], val)
	}
	switch {
	case spec.FinalIsWrite:
		bld.Write(b, x, 999)
	case spec.FinalReadsStale:
		bld.ReadInit(b, x)
	default:
		bld.Read(b, x, v0)
	}
	return bld.History()
}

// ChainWitness records a detected x-dependency chain: the initial and
// final operations and one linking operation per hoop process.
type ChainWitness struct {
	Hoop    Hoop
	Initial model.Op // w_a(x)v
	Final   model.Op // o_b(x)
	Links   []model.Op
}

// DetectDependencyChain reports whether history h includes an
// x-dependency chain along the given hoop (Definition 4): an initial
// write w_a(x)v at the first hoop vertex, a final operation o_b(x) at
// the last, and a read-from/program-order pattern visiting every hoop
// process in order that implies w_a(x)v ↦co o_b(x).
//
// Detection walks the hoop with a dynamic program: at each hop the
// frontier is the set of operations of the current process reachable
// from the initial write through alternating program-order and direct
// read-from steps confined to the hoop's processes.
func DetectDependencyChain(h *model.History, hoop Hoop) (ChainWitness, bool) {
	x := hoop.Var
	if len(hoop.Path) < 2 {
		return ChainWitness{}, false
	}
	rf, err := model.ReadFrom(h)
	if err != nil {
		return ChainWitness{}, false
	}
	a, b := hoop.Path[0], hoop.Path[len(hoop.Path)-1]

	for _, startID := range h.Local(a) {
		start := h.Op(startID)
		if !start.IsWrite() || start.Var != x {
			continue
		}
		// Frontier: ops of the current hoop process reachable from the
		// initial write. At p_a that is the write and everything after
		// it in program order.
		frontier := map[int]int{} // op ID → predecessor link op ID (for witness)
		link := map[int]int{startID: -1}
		for _, id := range h.Local(a) {
			if id >= startID { // same process: program order == builder order
				frontier[id] = startID
				if id != startID {
					link[id] = startID
				}
			}
		}
		for hop := 1; hop < len(hoop.Path); hop++ {
			next := hoop.Path[hop]
			nextFrontier := map[int]int{}
			for fid := range frontier {
				fop := h.Op(fid)
				if !fop.IsWrite() {
					continue
				}
				// Reads of this write by the next hoop process.
				rf.Succ(fid).ForEach(func(rid int) {
					rop := h.Op(rid)
					if rop.Proc != next {
						return
					}
					for _, id := range h.Local(next) {
						if id >= rid {
							if _, seen := nextFrontier[id]; !seen {
								nextFrontier[id] = fid
								link[id] = fid
							}
						}
					}
				})
			}
			frontier = nextFrontier
			if len(frontier) == 0 {
				return ChainWitness{}, false
			}
		}
		// Final operation on x at p_b, distinct from the initial write.
		for fid := range frontier {
			fop := h.Op(fid)
			if fop.Var != x || fid == startID || fop.Proc != b {
				continue
			}
			// Reconstruct one linking op per hop.
			w := ChainWitness{Hoop: hoop, Initial: start, Final: fop}
			for id := fid; link[id] >= 0; id = link[id] {
				w.Links = append([]model.Op{h.Op(id)}, w.Links...)
			}
			return w, true
		}
	}
	return ChainWitness{}, false
}
