package sharegraph

import (
	"reflect"
	"testing"
)

// TestIndexDenseTables checks the interning and every precomputed
// table against the string-keyed Placement API on the hoop topology.
func TestIndexDenseTables(t *testing.T) {
	pl := NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y")
	ix := pl.Index()

	if ix.NumProcs() != 3 || ix.NumVars() != 2 || pl.NumVars() != 2 {
		t.Fatalf("shape: %d procs, %d vars", ix.NumProcs(), ix.NumVars())
	}
	// IDs follow sorted-name order.
	if ix.ID("x") != 0 || ix.ID("y") != 1 || ix.ID("zzz") != -1 || pl.VarID("x") != 0 {
		t.Errorf("interning wrong: x=%d y=%d zzz=%d", ix.ID("x"), ix.ID("y"), ix.ID("zzz"))
	}
	if ix.Name(0) != "x" || ix.Name(1) != "y" || pl.VarName(1) != "y" {
		t.Errorf("names wrong: %q %q", ix.Name(0), ix.Name(1))
	}
	for p := 0; p < 3; p++ {
		for id := 0; id < 2; id++ {
			if got, want := ix.Holds(p, id), pl.Holds(p, ix.Name(id)); got != want {
				t.Errorf("Holds(%d,%d) = %v, placement says %v", p, id, got, want)
			}
		}
	}
	if !reflect.DeepEqual(ix.Clique(0), []int{0, 2}) || !reflect.DeepEqual(ix.Clique(1), []int{0, 1, 2}) {
		t.Errorf("cliques: C(x)=%v C(y)=%v", ix.Clique(0), ix.Clique(1))
	}
	if !reflect.DeepEqual(ix.VarIDs(0), []int{0, 1}) || !reflect.DeepEqual(ix.VarIDs(1), []int{1}) {
		t.Errorf("VarIDs: X_0=%v X_1=%v", ix.VarIDs(0), ix.VarIDs(1))
	}
	if !reflect.DeepEqual(ix.Peers(0, 0), []int{2}) || !reflect.DeepEqual(ix.Peers(1, 1), []int{0, 2}) {
		t.Errorf("peers: %v %v", ix.Peers(0, 0), ix.Peers(1, 1))
	}
	if got := ix.MsgVars(0); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("MsgVars(0) = %v", got)
	}
	// Holds is total over out-of-range ids.
	if ix.Holds(0, -1) || ix.Holds(0, 99) {
		t.Error("Holds must reject out-of-range VarIDs")
	}
}

// TestIndexInvalidatedByAssign checks that later Assign calls rebuild
// the index (IDs may shift — sorted order is recomputed).
func TestIndexInvalidatedByAssign(t *testing.T) {
	pl := NewPlacement(2).Assign(0, "m")
	ix1 := pl.Index()
	if ix1.NumVars() != 1 || ix1.ID("m") != 0 {
		t.Fatalf("initial index wrong")
	}
	pl.Assign(1, "a") // sorts before m: IDs shift
	ix2 := pl.Index()
	if ix2 == ix1 {
		t.Fatal("Assign did not invalidate the index")
	}
	if ix2.ID("a") != 0 || ix2.ID("m") != 1 {
		t.Errorf("rebuilt IDs wrong: a=%d m=%d", ix2.ID("a"), ix2.ID("m"))
	}
	// The old snapshot keeps its own consistent view.
	if ix1.ID("m") != 0 || ix1.NumVars() != 1 {
		t.Error("frozen index mutated by later Assign")
	}
}

// TestIndexVarNamePanicsOutOfRange pins the documented panic.
func TestIndexVarNamePanicsOutOfRange(t *testing.T) {
	pl := NewPlacement(1).Assign(0, "x")
	defer func() {
		if recover() == nil {
			t.Error("VarName(99) must panic")
		}
	}()
	pl.VarName(99)
}
