package sharegraph

import (
	"testing"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
)

func TestFigure3DependencyChain(t *testing.T) {
	// Hoop [0,1,2,3] on x through link variables a,b,c.
	pl := NewPlacement(4).
		Assign(0, "x", "a").
		Assign(1, "a", "b").
		Assign(2, "b", "c").
		Assign(3, "c", "x")
	hoop := Hoop{Var: "x", Path: []int{0, 1, 2, 3}}

	// Final read of the chained value: causally consistent.
	h, err := pl.DependencyChainHistory(ChainSpec{Hoop: hoop})
	if err != nil {
		t.Fatal(err)
	}
	res, err := check.Check(h, check.Causal)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consistent {
		t.Errorf("chain history reading the fresh value must be causal:\n%s", h)
	}

	// Final read of ⊥: the dependency chain makes it causally
	// inconsistent — this is exactly why interior processes are
	// x-relevant (Theorem 1, necessity).
	hStale, err := pl.DependencyChainHistory(ChainSpec{Hoop: hoop, FinalReadsStale: true})
	if err != nil {
		t.Fatal(err)
	}
	resStale, err := check.Check(hStale, check.Causal)
	if err != nil {
		t.Fatal(err)
	}
	if resStale.Consistent {
		t.Errorf("stale final read must violate causal consistency:\n%s", hStale)
	}
	// …but PRAM admits it: no dependency chain forms under ↦pram
	// (Theorem 2).
	resPRAM, err := check.Check(hStale, check.PRAM)
	if err != nil {
		t.Fatal(err)
	}
	if !resPRAM.Consistent {
		t.Errorf("Theorem 2: the stale read must be PRAM-consistent:\n%s", hStale)
	}
}

func TestDependencyChainFinalWrite(t *testing.T) {
	pl := NewPlacement(3).
		Assign(0, "x", "a").
		Assign(1, "a", "b").
		Assign(2, "b", "x")
	hoop := Hoop{Var: "x", Path: []int{0, 1, 2}}
	h, err := pl.DependencyChainHistory(ChainSpec{Hoop: hoop, FinalIsWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	co, err := model.CausalOrder(h)
	if err != nil {
		t.Fatal(err)
	}
	// The initial write on x must causally precede the final write on x.
	var initial, final model.Op
	for _, o := range h.Ops() {
		if o.IsWrite() && o.Var == "x" {
			if o.Proc == 0 {
				initial = o
			} else {
				final = o
			}
		}
	}
	if !co.Has(initial.ID, final.ID) {
		t.Errorf("w_a(x)v must causally precede w_b(x)v':\n%s", h)
	}
}

func TestDetectDependencyChain(t *testing.T) {
	pl := NewPlacement(4).
		Assign(0, "x", "a").
		Assign(1, "a", "b").
		Assign(2, "b", "c").
		Assign(3, "c", "x")
	hoop := Hoop{Var: "x", Path: []int{0, 1, 2, 3}}
	h, err := pl.DependencyChainHistory(ChainSpec{Hoop: hoop})
	if err != nil {
		t.Fatal(err)
	}
	w, found := DetectDependencyChain(h, hoop)
	if !found {
		t.Fatalf("constructed chain not detected:\n%s", h)
	}
	if w.Initial.Proc != 0 || !w.Initial.IsWrite() || w.Initial.Var != "x" {
		t.Errorf("initial = %v, want a write on x by p0", w.Initial)
	}
	if w.Final.Proc != 3 || w.Final.Var != "x" {
		t.Errorf("final = %v, want an op on x by p3", w.Final)
	}
}

func TestDetectDependencyChainAbsent(t *testing.T) {
	hoop := Hoop{Var: "x", Path: []int{0, 1, 2}}
	// History where p1 never reads p0's link write: no chain.
	h := model.NewBuilder(3).
		Write(0, "x", 1).
		Write(0, "a", 2).
		Write(1, "b", 3). // p1 writes without reading a
		Read(2, "b", 3).
		Read(2, "x", 1).
		MustHistory()
	if _, found := DetectDependencyChain(h, hoop); found {
		t.Error("chain detected although p1 never reads the link variable")
	}
}

func TestDetectDependencyChainOnFigure5(t *testing.T) {
	// The paper's Figure 5 history includes an x-dependency chain along
	// the x-hoop [p1,p2,p3] (our 0,1,2): w1(x)a … w3(x)d.
	h := model.Figure5History()
	hoop := Hoop{Var: "x", Path: []int{0, 1, 2}}
	w, found := DetectDependencyChain(h, hoop)
	if !found {
		t.Fatalf("figure 5 chain not detected:\n%s", h)
	}
	if w.Initial.String() != "w0(x)1" {
		t.Errorf("initial = %v, want w0(x)1", w.Initial)
	}
	if w.Final.String() != "w2(x)4" {
		t.Errorf("final = %v, want w2(x)4", w.Final)
	}
}

func TestDetectDependencyChainOnFigure4(t *testing.T) {
	// Figure 4: no x-dependency chain forms along [p1,p2,p3] — the last
	// operation of p3 on x (the ⊥-read) is NOT lazily reachable …
	// but under the *causal* notion used by Definition 4 the read r3(x)⊥
	// IS the final operation of a chain (that is exactly why the history
	// is not causal). DetectDependencyChain implements Definition 4's
	// causal pattern, so it must find the chain ending at r3(x)⊥.
	h := model.Figure4History()
	hoop := Hoop{Var: "x", Path: []int{0, 1, 2}}
	w, found := DetectDependencyChain(h, hoop)
	if !found {
		t.Fatalf("figure 4 causal chain not detected:\n%s", h)
	}
	if !w.Final.IsRead() || w.Final.Val != model.Bottom {
		t.Errorf("final = %v, want the ⊥-read", w.Final)
	}
}

func TestDependencyChainHistoryErrors(t *testing.T) {
	pl := NewPlacement(3).
		Assign(0, "x").
		Assign(1, "y").
		Assign(2, "x", "y")
	cases := []ChainSpec{
		{Hoop: Hoop{Var: "x", Path: []int{0}}},       // too short
		{Hoop: Hoop{Var: "x", Path: []int{1, 2}}},    // endpoint 1 lacks x
		{Hoop: Hoop{Var: "x", Path: []int{0, 2}}},    // 0 and 2 share only x
		{Hoop: Hoop{Var: "y", Path: []int{1, 2, 1}}}, // 2 holds y: bad interior … endpoints also wrong
	}
	for i, spec := range cases {
		if _, err := pl.DependencyChainHistory(spec); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
