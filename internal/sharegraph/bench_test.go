package sharegraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomPlacementLocal builds a placement without importing workload
// (which would create an import cycle through the tests).
func randomPlacementLocal(rng *rand.Rand, numProcs, numVars, degree int) *Placement {
	pl := NewPlacement(numProcs)
	for v := 0; v < numVars; v++ {
		perm := rng.Perm(numProcs)
		for _, p := range perm[:degree] {
			pl.Assign(p, fmt.Sprintf("x%d", v))
		}
	}
	return pl
}

// BenchmarkXRelevant measures the linear-time Theorem 1 computation —
// the paper's §3.3 notes that enumeration "can be very long"; this is
// the alternative.
func BenchmarkXRelevant(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pl := randomPlacementLocal(rand.New(rand.NewSource(1)), n, n, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.XRelevant("x0")
			}
		})
	}
}

// BenchmarkHoopEnumeration measures exhaustive hoop enumeration on
// small dense topologies (exponential, bounded by the limit).
func BenchmarkHoopEnumeration(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pl := randomPlacementLocal(rand.New(rand.NewSource(2)), n, n, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.Hoops("x0", 1000)
			}
		})
	}
}

// BenchmarkDependencyChainDetection measures Definition 4 detection on
// canonical chain histories of growing hoop length.
func BenchmarkDependencyChainDetection(b *testing.B) {
	for _, k := range []int{3, 6, 12} {
		b.Run(fmt.Sprintf("hoop=%d", k), func(b *testing.B) {
			pl := NewPlacement(k + 1)
			path := make([]int, k+1)
			for i := 0; i <= k; i++ {
				path[i] = i
				if i > 0 {
					link := fmt.Sprintf("l%d", i)
					pl.Assign(i-1, link)
					pl.Assign(i, link)
				}
			}
			pl.Assign(0, "x")
			pl.Assign(k, "x")
			hoop := Hoop{Var: "x", Path: path}
			h, err := pl.DependencyChainHistory(ChainSpec{Hoop: hoop})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, found := DetectDependencyChain(h, hoop); !found {
					b.Fatal("chain not detected")
				}
			}
		})
	}
}
