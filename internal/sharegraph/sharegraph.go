// Package sharegraph models the distribution of shared variables over
// MCS processes as the paper's share graph (§3.1): an undirected graph
// whose vertices are processes, with an edge between two processes iff
// some variable is replicated on both. The package computes the
// per-variable replica cliques C(x), enumerates x-hoops, decides
// x-relevance (Theorem 1) in linear time, and constructs/detects the
// x-dependency chains of Definition 4.
//
// A placement is no longer frozen for the lifetime of a cluster: the
// dense Index the protocol hot paths run on is epoch-versioned, and
// Index.Rebind derives the successor epoch's index from a proposed
// placement — same processes, same variable universe (so VarIDs stay
// stable), new cliques. The mcs reconfiguration engine ships Rebind's
// output through its propose → fence → transfer → flip protocol.
//
// Each variable additionally has an effective owner — the process that
// acts as its per-variable primary (atomic registers) or sequencer
// (cache consistency). The owner defaults to the lowest member of C(x)
// and can be pinned elsewhere in the clique with SetOwner; because it
// is part of the placement, an epoch flip migrates ownership exactly
// like it migrates replicas.
package sharegraph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Placement records which processes replicate which variables: the
// X_i sets of the paper. A Placement is the input from which the share
// graph is derived.
type Placement struct {
	numProcs int
	vars     []string          // sorted variable universe
	varIdx   map[string]int    // variable → dense index
	holds    []map[string]bool // holds[p][x]
	owners   map[string]int    // explicit owner overrides (SetOwner)

	mu     sync.Mutex       // guards clique (lazily filled cache)
	clique map[string][]int // cached C(x), sorted
	idx    idxPtr           // lazily built dense index (see index.go)
}

// NewPlacement returns an empty placement over numProcs processes.
func NewPlacement(numProcs int) *Placement {
	if numProcs <= 0 {
		panic(fmt.Sprintf("sharegraph: placement needs at least one process, got %d", numProcs))
	}
	pl := &Placement{
		numProcs: numProcs,
		varIdx:   make(map[string]int),
		holds:    make([]map[string]bool, numProcs),
		clique:   make(map[string][]int),
	}
	for p := range pl.holds {
		pl.holds[p] = make(map[string]bool)
	}
	return pl
}

// Assign adds the variables to X_p, the set process p replicates.
func (pl *Placement) Assign(p int, vars ...string) *Placement {
	if p < 0 || p >= pl.numProcs {
		panic(fmt.Sprintf("sharegraph: process %d out of range [0,%d)", p, pl.numProcs))
	}
	for _, v := range vars {
		if v == "" {
			panic("sharegraph: empty variable name")
		}
		if !pl.holds[p][v] {
			pl.holds[p][v] = true
			pl.mu.Lock()
			delete(pl.clique, v) // invalidate cache
			pl.idx.Store(nil)    // invalidate the dense index
			pl.mu.Unlock()
			if _, seen := pl.varIdx[v]; !seen {
				pl.varIdx[v] = len(pl.vars)
				pl.vars = append(pl.vars, v)
				sort.Strings(pl.vars)
				for i, name := range pl.vars {
					pl.varIdx[name] = i
				}
			}
		}
	}
	return pl
}

// SetOwner overrides variable x's owner — the process that acts as x's
// per-variable primary (atomic registers) or sequencer (cache
// consistency). The owner must already replicate x (Assign first).
// Without an override the owner defaults to the lowest-numbered member
// of C(x), which is what every placement used before owners became
// migratable.
func (pl *Placement) SetOwner(x string, p int) *Placement {
	if p < 0 || p >= pl.numProcs {
		panic(fmt.Sprintf("sharegraph: owner %d out of range [0,%d)", p, pl.numProcs))
	}
	if !pl.holds[p][x] {
		panic(fmt.Sprintf("sharegraph: owner %d does not replicate %q; Assign it first", p, x))
	}
	if pl.owners == nil {
		pl.owners = make(map[string]int)
	}
	pl.owners[x] = p
	pl.mu.Lock()
	pl.idx.Store(nil) // invalidate the dense index
	pl.mu.Unlock()
	return pl
}

// Owner returns variable x's effective owner: the SetOwner override
// when present, the lowest member of C(x) otherwise, and -1 when x has
// no replicas.
func (pl *Placement) Owner(x string) int {
	if p, ok := pl.owners[x]; ok {
		return p
	}
	cx := pl.Clique(x)
	if len(cx) == 0 {
		return -1
	}
	return cx[0]
}

// Owners returns a copy of the explicit owner overrides (variables
// whose owner was pinned with SetOwner); derived defaults are omitted.
func (pl *Placement) Owners() map[string]int {
	out := make(map[string]int, len(pl.owners))
	for x, p := range pl.owners {
		out[x] = p
	}
	return out
}

// FromLists builds a placement from per-process variable lists:
// lists[p] becomes X_p. The list count fixes the process count.
func FromLists(lists [][]string) *Placement {
	pl := NewPlacement(len(lists))
	for p, vars := range lists {
		pl.Assign(p, vars...)
	}
	return pl
}

// Lists renders the placement as per-process sorted variable lists,
// the inverse of FromLists. The result is freshly allocated.
func (pl *Placement) Lists() [][]string {
	out := make([][]string, pl.numProcs)
	for p := range out {
		out[p] = pl.VarsOf(p)
	}
	return out
}

// Clone returns an independent copy of the placement, owner overrides
// included.
func (pl *Placement) Clone() *Placement {
	out := NewPlacement(pl.numProcs)
	for p := 0; p < pl.numProcs; p++ {
		out.Assign(p, pl.VarsOf(p)...)
	}
	for x, p := range pl.owners {
		out.SetOwner(x, p)
	}
	return out
}

// Equal reports whether both placements assign exactly the same
// variable sets to the same processes with the same effective owners.
// Owners compare by effect, not by override: a placement pinning x's
// owner to the lowest clique member equals one that leaves the default.
func (pl *Placement) Equal(other *Placement) bool {
	if other == nil || pl.numProcs != other.numProcs {
		return false
	}
	for p := 0; p < pl.numProcs; p++ {
		if len(pl.holds[p]) != len(other.holds[p]) {
			return false
		}
		for v := range pl.holds[p] {
			if !other.holds[p][v] {
				return false
			}
		}
	}
	for _, x := range pl.vars {
		if pl.Owner(x) != other.Owner(x) {
			return false
		}
	}
	return true
}

// NumProcs returns the number of processes.
func (pl *Placement) NumProcs() int { return pl.numProcs }

// Vars returns the sorted variable universe. The returned slice must
// not be modified.
func (pl *Placement) Vars() []string { return pl.vars }

// Holds reports whether process p replicates variable x (x ∈ X_p).
func (pl *Placement) Holds(p int, x string) bool { return pl.holds[p][x] }

// VarsOf returns X_p sorted. The result is a fresh slice.
func (pl *Placement) VarsOf(p int) []string {
	out := make([]string, 0, len(pl.holds[p]))
	for v := range pl.holds[p] {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Clique returns C(x): the sorted processes on which x is replicated.
// The returned slice must not be modified.
func (pl *Placement) Clique(x string) []int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if c, ok := pl.clique[x]; ok {
		return c
	}
	var c []int
	for p := 0; p < pl.numProcs; p++ {
		if pl.holds[p][x] {
			c = append(c, p)
		}
	}
	if c == nil {
		c = []int{}
	}
	pl.clique[x] = c
	return c
}

// SharedVars returns the sorted variables replicated on both p and q —
// the label of edge (p,q) in the share graph; empty means no edge.
func (pl *Placement) SharedVars(p, q int) []string {
	var out []string
	for v := range pl.holds[p] {
		if pl.holds[q][v] {
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Edge reports whether (p,q) is an edge of the share graph.
func (pl *Placement) Edge(p, q int) bool {
	if p == q {
		return false
	}
	for v := range pl.holds[p] {
		if pl.holds[q][v] {
			return true
		}
	}
	return false
}

// EdgeSharingOtherThan reports whether p and q share some variable
// different from x — the condition on consecutive hoop vertices
// (Definition 3 ii).
func (pl *Placement) EdgeSharingOtherThan(p, q int, x string) bool {
	if p == q {
		return false
	}
	for v := range pl.holds[p] {
		if v != x && pl.holds[q][v] {
			return true
		}
	}
	return false
}

// Neighbors returns the sorted share-graph neighbors of p.
func (pl *Placement) Neighbors(p int) []int {
	var out []int
	for q := 0; q < pl.numProcs; q++ {
		if q != p && pl.Edge(p, q) {
			out = append(out, q)
		}
	}
	return out
}

// String renders the placement one process per line.
func (pl *Placement) String() string {
	var b strings.Builder
	for p := 0; p < pl.numProcs; p++ {
		fmt.Fprintf(&b, "X%d = {%s}\n", p, strings.Join(pl.VarsOf(p), ", "))
	}
	return b.String()
}

// DOT renders the share graph in Graphviz format with edges labelled by
// the shared variables, as in the paper's Figure 1.
func (pl *Placement) DOT() string {
	var b strings.Builder
	b.WriteString("graph sharegraph {\n")
	for p := 0; p < pl.numProcs; p++ {
		fmt.Fprintf(&b, "  p%d [label=\"p%d\\n{%s}\"];\n", p, p, strings.Join(pl.VarsOf(p), ","))
	}
	for p := 0; p < pl.numProcs; p++ {
		for q := p + 1; q < pl.numProcs; q++ {
			if shared := pl.SharedVars(p, q); len(shared) > 0 {
				fmt.Fprintf(&b, "  p%d -- p%d [label=\"%s\"];\n", p, q, strings.Join(shared, ","))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Figure1Placement builds the paper's Figure 1 example: three
// processes p_i, p_j, p_k (here p0, p1, p2) with X_i = {x1,x2},
// X_j = {x1}, X_k = {x2}.
func Figure1Placement() *Placement {
	return NewPlacement(3).
		Assign(0, "x1", "x2").
		Assign(1, "x1").
		Assign(2, "x2")
}
