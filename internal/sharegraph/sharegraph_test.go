package sharegraph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestFigure1(t *testing.T) {
	// Paper Figure 1: X_i={x1,x2}, X_j={x1}, X_k={x2} with i,j,k = 0,1,2.
	pl := Figure1Placement()
	if got := pl.Clique("x1"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("C(x1) = %v, want [0 1]", got)
	}
	if got := pl.Clique("x2"); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("C(x2) = %v, want [0 2]", got)
	}
	if !pl.Edge(0, 1) || !pl.Edge(0, 2) || pl.Edge(1, 2) {
		t.Error("share graph edges wrong: want 0-1 and 0-2 only")
	}
	if got := pl.SharedVars(0, 1); !reflect.DeepEqual(got, []string{"x1"}) {
		t.Errorf("label(0,1) = %v, want [x1]", got)
	}
	// No hoops: C(x1)={0,1}, the only other vertex 2 connects only to 0.
	if hoops := pl.Hoops("x1", 0); len(hoops) != 0 {
		t.Errorf("Figure 1 has no x1-hoops, got %v", hoops)
	}
	if got := pl.XRelevant("x1"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("x1-relevant = %v, want C(x1) only", got)
	}
}

// figure5Placement is the variable distribution implied by the paper's
// Figures 4–6: C(x)={p1,p3,p4} (here 0,2,3), with p2 (here 1) on the
// x-hoop [p1,p2,p3] through y.
func figure5Placement() *Placement {
	return NewPlacement(4).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y").
		Assign(3, "x")
}

func TestFigure2HoopEnumeration(t *testing.T) {
	pl := figure5Placement()
	hoops := pl.Hoops("x", 0)
	// Expected hoops with interior {1}: [0 1 2]; plus the direct hoop
	// [0 2] (edge 0-2 shares y ≠ x).
	var paths [][]int
	for _, h := range hoops {
		paths = append(paths, h.Path)
	}
	want := [][]int{{0, 2}, {0, 1, 2}}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("x-hoops = %v, want %v", paths, want)
	}
}

func TestHoopLimit(t *testing.T) {
	pl := figure5Placement()
	if hoops := pl.Hoops("x", 1); len(hoops) != 1 {
		t.Errorf("limit=1 returned %d hoops", len(hoops))
	}
}

func TestXRelevantTheorem1(t *testing.T) {
	pl := figure5Placement()
	// Theorem 1: p2 (vertex 1) is x-relevant because it lies on the
	// x-hoop [0,1,2]; vertex 3 holds x so it is trivially relevant.
	if got := pl.XRelevant("x"); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("x-relevant = %v, want all four", got)
	}
	// y is fully replicated on 0,1,2; vertex 3 shares only x with the
	// others, and edges into C(y) sharing a variable ≠ y exist (x), but
	// 3 alone cannot bridge two C(y) members … it can: 3 is adjacent to
	// 0 and 2 via x. So 3 IS on a y-hoop [0,3,2].
	if got := pl.XRelevant("y"); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("y-relevant = %v, want all four", got)
	}
}

func TestXRelevantIsolatedComponent(t *testing.T) {
	// A pendant vertex hanging off a single C(x) member is NOT on any
	// x-hoop (its component touches only one C(x) anchor).
	pl := NewPlacement(4).
		Assign(0, "x", "a").
		Assign(1, "x").
		Assign(2, "a", "b"). // pendant chain 0-2-3, anchored only at 0
		Assign(3, "b")
	if got := pl.XRelevant("x"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("x-relevant = %v, want [0 1]", got)
	}
	if hoops := pl.Hoops("x", 0); len(hoops) != 0 {
		t.Errorf("unexpected hoops %v", hoops)
	}
}

func TestXRelevantLongHoop(t *testing.T) {
	// C(x) = {0, 4}; chain 0-1-2-3-4 through distinct link variables.
	pl := NewPlacement(5).
		Assign(0, "x", "a").
		Assign(1, "a", "b").
		Assign(2, "b", "c").
		Assign(3, "c", "d").
		Assign(4, "d", "x")
	got := pl.XRelevant("x")
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("x-relevant = %v, want all five", got)
	}
	hoops := pl.Hoops("x", 0)
	if len(hoops) != 1 || !reflect.DeepEqual(hoops[0].Path, []int{0, 1, 2, 3, 4}) {
		t.Errorf("hoops = %v, want the single chain", hoops)
	}
}

func TestEnumerationMatchesLinearRelevance(t *testing.T) {
	// Cross-check Theorem 1's two computations on assorted topologies.
	topologies := []*Placement{
		Figure1Placement(),
		figure5Placement(),
		NewPlacement(6).
			Assign(0, "x", "a").
			Assign(1, "a", "b").
			Assign(2, "b", "x").
			Assign(3, "x", "c").
			Assign(4, "c").
			Assign(5, "d"), // isolated
		NewPlacement(5).
			Assign(0, "x", "u", "v").
			Assign(1, "u", "w").
			Assign(2, "v", "w", "x").
			Assign(3, "w").
			Assign(4, "x"),
	}
	for ti, pl := range topologies {
		for _, x := range pl.Vars() {
			fast := pl.XRelevant(x)
			slow := pl.XRelevantByEnumeration(x)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("topology %d, var %s: linear %v != enumeration %v", ti, x, fast, slow)
			}
		}
	}
}

func TestEdgeSharingOtherThan(t *testing.T) {
	pl := NewPlacement(2).Assign(0, "x", "y").Assign(1, "x", "y")
	if !pl.EdgeSharingOtherThan(0, 1, "x") {
		t.Error("0 and 1 share y ≠ x")
	}
	pl2 := NewPlacement(2).Assign(0, "x").Assign(1, "x")
	if pl2.EdgeSharingOtherThan(0, 1, "x") {
		t.Error("0 and 1 share only x")
	}
	if pl.EdgeSharingOtherThan(0, 0, "x") {
		t.Error("self loops are not edges")
	}
}

func TestNeighborsAndVarsOf(t *testing.T) {
	pl := figure5Placement()
	if got := pl.Neighbors(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
	if got := pl.VarsOf(0); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("VarsOf(0) = %v", got)
	}
}

func TestDOTAndString(t *testing.T) {
	pl := Figure1Placement()
	dot := pl.DOT()
	for _, want := range []string{"graph sharegraph", "p0 -- p1", "x1", "p0 -- p2", "x2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if s := pl.String(); !strings.Contains(s, "X0 = {x1, x2}") {
		t.Errorf("String() = %q", s)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	pl := figure5Placement()
	data, err := pl.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := ParsePlacement(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if pl2.NumProcs() != pl.NumProcs() {
		t.Fatalf("proc count changed")
	}
	for p := 0; p < pl.NumProcs(); p++ {
		if !reflect.DeepEqual(pl.VarsOf(p), pl2.VarsOf(p)) {
			t.Errorf("process %d: %v != %v", p, pl.VarsOf(p), pl2.VarsOf(p))
		}
	}
}

func TestParsePlacementErrors(t *testing.T) {
	for _, c := range []string{
		`{"processes": []}`,
		`{"processes": [[""]]}`,
		`{nope`,
	} {
		if _, err := ParsePlacement(strings.NewReader(c)); err == nil {
			t.Errorf("ParsePlacement(%q) succeeded, want error", c)
		}
	}
}

func TestPlacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Assign out of range must panic")
		}
	}()
	NewPlacement(1).Assign(3, "x")
}

func TestCliqueEmptyForUnknownVar(t *testing.T) {
	pl := Figure1Placement()
	if got := pl.Clique("zzz"); len(got) != 0 {
		t.Errorf("C(zzz) = %v, want empty", got)
	}
}
