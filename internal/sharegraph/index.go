package sharegraph

import (
	"fmt"
	"sync/atomic"
)

// Index is the frozen, allocation-free view of a Placement that the
// protocol hot paths run on. Variable names are interned into dense
// VarIDs (0 … NumVars-1, in sorted-name order), and every per-variable
// set the protocols consult — the replica clique C(x), the peer set
// C(x)∖{p}, the X_p membership — is precomputed into int slices, so a
// Read/Write resolves its variable with one map lookup and then never
// touches a map or allocates again.
//
// An Index is immutable. Placement.Index returns the current one and
// builds it lazily; a later Assign invalidates it, so callers must
// capture the Index only after the placement is fully constructed.
// Returned slices are shared — callers must not modify them.
//
// Indexes are epoch-versioned: the one a Placement builds is epoch 0,
// and Rebind derives successor epochs for runtime reconfiguration.
// Because the variable universe may not change across epochs, VarIDs
// are stable for the lifetime of a cluster — a name interned under one
// epoch's Index resolves to the same dense id under every other.
type Index struct {
	epoch    uint64
	numProcs int
	vars     []string       // id → name, sorted
	ids      map[string]int // name → id
	holds    [][]bool       // holds[p][id]
	cliques  [][]int        // cliques[id] = C(x), sorted
	varsOf   [][]int        // varsOf[p] = X_p as sorted ids
	peers    [][][]int      // peers[p][id] = C(x) ∖ {p}, sorted
	msgVars  [][]string     // msgVars[id] = the canonical {name} slice
	owner    []int          // owner[id]: the variable's primary/sequencer
}

// Epoch returns the placement epoch this index describes. Placement-
// built indexes are epoch 0; Rebind stamps successors.
func (ix *Index) Epoch() uint64 { return ix.epoch }

// NumProcs returns the number of processes.
func (ix *Index) NumProcs() int { return ix.numProcs }

// NumVars returns the size of the variable universe.
func (ix *Index) NumVars() int { return len(ix.vars) }

// ID returns the dense VarID of x, or -1 when x is not in the universe.
func (ix *Index) ID(x string) int {
	id, ok := ix.ids[x]
	if !ok {
		return -1
	}
	return id
}

// Name returns the variable name of a VarID.
func (ix *Index) Name(id int) string { return ix.vars[id] }

// Holds reports whether process p replicates the variable with VarID id.
func (ix *Index) Holds(p, id int) bool {
	return id >= 0 && id < len(ix.vars) && ix.holds[p][id]
}

// Clique returns C(x) for a VarID: the sorted processes replicating it.
func (ix *Index) Clique(id int) []int { return ix.cliques[id] }

// VarIDs returns X_p as sorted VarIDs.
func (ix *Index) VarIDs(p int) []int { return ix.varsOf[p] }

// Peers returns C(x) ∖ {p}: the processes a write by p on the variable
// must be propagated to.
func (ix *Index) Peers(p, id int) []int { return ix.peers[p][id] }

// MsgVars returns the canonical one-element variable list for messages
// carrying information about exactly this variable. The slice is shared
// across every message ever sent about the variable: callers must
// neither modify nor recycle it.
func (ix *Index) MsgVars(id int) []string { return ix.msgVars[id] }

// Owner returns the variable's owner under this index: the process
// acting as its primary (atomic registers) or sequencer (cache
// consistency). Defaults to the lowest member of C(x) unless the
// placement pinned a different owner with SetOwner; -1 when the
// variable has no replicas.
func (ix *Index) Owner(id int) int { return ix.owner[id] }

// Index returns the placement's dense index, building it on first use.
// Assign invalidates the index, so capture it only once the placement
// is fully constructed (protocol constructors do).
func (pl *Placement) Index() *Index {
	if ix := pl.idx.Load(); ix != nil {
		return ix
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if ix := pl.idx.Load(); ix != nil {
		return ix
	}
	ix := pl.buildIndex()
	pl.idx.Store(ix)
	return ix
}

// MaxVars caps the variable universe at 2^24: the wire format packs
// VarIDs into the low 24 bits of the value-tag word (mcs.Enc.VarVal).
const MaxVars = 1 << 24

// buildIndex materializes the dense tables. Called with pl.mu held.
func (pl *Placement) buildIndex() *Index {
	n := pl.numProcs
	if len(pl.vars) > MaxVars {
		panic(fmt.Sprintf("sharegraph: %d variables exceed the wire format's %d-variable universe", len(pl.vars), MaxVars))
	}
	ix := &Index{
		numProcs: n,
		vars:     append([]string(nil), pl.vars...),
		ids:      make(map[string]int, len(pl.vars)),
		holds:    make([][]bool, n),
		cliques:  make([][]int, len(pl.vars)),
		varsOf:   make([][]int, n),
		peers:    make([][][]int, n),
		msgVars:  make([][]string, len(pl.vars)),
	}
	for id, name := range ix.vars {
		ix.ids[name] = id
		ix.msgVars[id] = []string{name}
	}
	for p := 0; p < n; p++ {
		ix.holds[p] = make([]bool, len(ix.vars))
		for id, name := range ix.vars {
			if pl.holds[p][name] {
				ix.holds[p][id] = true
				ix.varsOf[p] = append(ix.varsOf[p], id)
			}
		}
	}
	for id := range ix.vars {
		c := []int{}
		for p := 0; p < n; p++ {
			if ix.holds[p][id] {
				c = append(c, p)
			}
		}
		ix.cliques[id] = c
	}
	ix.owner = make([]int, len(ix.vars))
	for id, name := range ix.vars {
		if p, ok := pl.owners[name]; ok {
			ix.owner[id] = p
		} else if c := ix.cliques[id]; len(c) > 0 {
			ix.owner[id] = c[0]
		} else {
			ix.owner[id] = -1
		}
	}
	for p := 0; p < n; p++ {
		ix.peers[p] = make([][]int, len(ix.vars))
		for id := range ix.vars {
			peers := []int{}
			for _, q := range ix.cliques[id] {
				if q != p {
					peers = append(peers, q)
				}
			}
			ix.peers[p][id] = peers
		}
	}
	return ix
}

// Rebind derives the Index of a successor epoch from a proposed
// placement. The proposal must keep the process count and the variable
// universe of the current index: VarIDs are assigned in sorted-name
// order, so an identical universe guarantees every dense id — and with
// it every interned name, wire frame and replica-array slot — means the
// same variable before and after the flip. Only the clique tables
// change. The returned index is freshly built (never the placement's
// cached epoch-0 index) and stamped with the given epoch.
func (ix *Index) Rebind(next *Placement, epoch uint64) (*Index, error) {
	if next == nil {
		return nil, fmt.Errorf("sharegraph: rebind needs a placement")
	}
	if next.NumProcs() != ix.numProcs {
		return nil, fmt.Errorf("sharegraph: rebind changes the process count from %d to %d",
			ix.numProcs, next.NumProcs())
	}
	nvars := next.Vars()
	i, j := 0, 0
	for i < len(ix.vars) || j < len(nvars) {
		switch {
		case j >= len(nvars) || (i < len(ix.vars) && ix.vars[i] < nvars[j]):
			return nil, fmt.Errorf("sharegraph: rebind drops variable %q from the universe", ix.vars[i])
		case i >= len(ix.vars) || ix.vars[i] > nvars[j]:
			return nil, fmt.Errorf("sharegraph: rebind adds variable %q to the universe", nvars[j])
		default:
			i++
			j++
		}
	}
	next.mu.Lock()
	nix := next.buildIndex()
	next.mu.Unlock()
	nix.epoch = epoch
	return nix, nil
}

// AsPlacement rematerializes the placement this index was built from,
// so share-graph analyses that live on Placement — XRelevant, hoop
// enumeration — can run against a rebound epoch's index. Every variable
// of a valid index has at least one holder (Rebind enforces a constant
// universe), so the reconstruction preserves the variable set.
func (ix *Index) AsPlacement() *Placement {
	pl := NewPlacement(ix.numProcs)
	for p := 0; p < ix.numProcs; p++ {
		for _, id := range ix.varsOf[p] {
			pl.Assign(p, ix.vars[id])
		}
	}
	for id, name := range ix.vars {
		if ix.owner[id] >= 0 && len(ix.cliques[id]) > 0 && ix.owner[id] != ix.cliques[id][0] {
			pl.SetOwner(name, ix.owner[id])
		}
	}
	return pl
}

// SameClique reports whether the variable with VarID id has the same
// replica clique under both indexes. Reconfiguration engines use it to
// decide which variables need fencing and transfer across an epoch
// flip.
func SameClique(a, b *Index, id int) bool {
	ca, cb := a.Clique(id), b.Clique(id)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// SameAssignment reports whether the variable keeps both its replica
// clique and its owner across the two indexes. Owner-aware protocols
// (atomic registers, cache consistency) fence on this instead of
// SameClique, so a pure owner move inside an unchanged clique still
// gets the fence→transfer window it needs.
func SameAssignment(a, b *Index, id int) bool {
	return SameClique(a, b, id) && a.Owner(id) == b.Owner(id)
}

// Neighbors returns the processes sharing at least one variable with p
// under this index, sorted. Unlike Placement.Neighbors it reflects the
// index's epoch, so recovery peer sets stay correct after a
// reconfiguration.
func (ix *Index) Neighbors(p int) []int {
	seen := make([]bool, ix.numProcs)
	for _, xi := range ix.varsOf[p] {
		for _, q := range ix.peers[p][xi] {
			seen[q] = true
		}
	}
	var out []int
	for q, ok := range seen {
		if ok {
			out = append(out, q)
		}
	}
	return out
}

// idxPtr wraps atomic.Pointer so Placement's zero-value-unfriendly
// construction keeps working (NewPlacement allocates the struct).
type idxPtr = atomic.Pointer[Index]

// NumVars returns the size of the variable universe.
func (pl *Placement) NumVars() int { return pl.Index().NumVars() }

// VarID returns the dense id of x, or -1 when x is unknown. IDs are
// assigned in sorted-name order and are stable only until the next
// Assign.
func (pl *Placement) VarID(x string) int { return pl.Index().ID(x) }

// VarName returns the variable name for a dense id. It panics when id
// is out of range, mirroring a slice access.
func (pl *Placement) VarName(id int) string {
	ix := pl.Index()
	if id < 0 || id >= ix.NumVars() {
		panic(fmt.Sprintf("sharegraph: VarID %d out of range [0,%d)", id, ix.NumVars()))
	}
	return ix.Name(id)
}
