package sharegraph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonPlacement is the wire form: one variable list per process.
type jsonPlacement struct {
	Processes [][]string `json:"processes"`
}

// MarshalJSON encodes the placement as {"processes": [["x","y"], …]}.
func (pl *Placement) MarshalJSON() ([]byte, error) {
	jp := jsonPlacement{Processes: make([][]string, pl.numProcs)}
	for p := 0; p < pl.numProcs; p++ {
		jp.Processes[p] = pl.VarsOf(p)
	}
	return json.Marshal(jp)
}

// ParsePlacement decodes a placement from its JSON form.
func ParsePlacement(r io.Reader) (*Placement, error) {
	var jp jsonPlacement
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("sharegraph: decoding placement: %w", err)
	}
	if len(jp.Processes) == 0 {
		return nil, fmt.Errorf("sharegraph: placement has no processes")
	}
	pl := NewPlacement(len(jp.Processes))
	for p, vars := range jp.Processes {
		for _, v := range vars {
			if v == "" {
				return nil, fmt.Errorf("sharegraph: process %d has an empty variable name", p)
			}
		}
		pl.Assign(p, vars...)
	}
	return pl, nil
}
