// Benchmarks regenerating the paper's quantitative claims (see
// DESIGN.md §3 and EXPERIMENTS.md):
//
//   - BenchmarkWrite / BenchmarkRead: per-operation cost of each
//     consistency protocol (wait-free vs round-trip, §3.3's latency
//     argument);
//   - BenchmarkControlOverhead: experiment E9 — control bytes per
//     operation as the ring system grows (causal grows Θ(N), PRAM
//     flat);
//   - BenchmarkHoopAwareAblation: experiment E15 — broadcast vs
//     hoop-aware causal notifications vs PRAM on star and ring share
//     graphs;
//   - BenchmarkBellmanFord: experiment E10/E11 — the §6 case study at
//     increasing network sizes.
//
// Custom metrics: ctrl-B/op (control bytes per operation) and msgs/op.
package partialdsm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"partialdsm"
	"partialdsm/internal/bellmanford"
)

// ringPlacement builds the adversarial ring share graph of E9.
func ringPlacement(n int) [][]string {
	out := make([][]string, n)
	for p := 0; p < n; p++ {
		out[p] = []string{fmt.Sprintf("x%d", p), fmt.Sprintf("x%d", (p+1)%n)}
	}
	return out
}

// starPlacement builds the hub-and-leaves share graph of E15.
func starPlacement(n int) [][]string {
	out := make([][]string, n)
	for p := 1; p < n; p++ {
		v := fmt.Sprintf("x%d", p-1)
		out[0] = append(out[0], v)
		out[p] = []string{v}
	}
	return out
}

// benchCluster builds an untraced cluster or fails the benchmark.
func benchCluster(b *testing.B, cons partialdsm.Consistency, placement [][]string) *partialdsm.Cluster {
	b.Helper()
	return benchClusterT(b, cons, placement, partialdsm.TransportClassic)
}

// benchClusterT is benchCluster with an explicit transport and
// coalescing batch size.
func benchClusterT(b *testing.B, cons partialdsm.Consistency, placement [][]string, tr partialdsm.Transport, coalesce ...int) *partialdsm.Cluster {
	b.Helper()
	batch := 0
	if len(coalesce) > 0 {
		batch = coalesce[0]
	}
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    cons,
		PlacementLists: placement,
		Seed:           1,
		DisableTrace:   true,
		Transport:      tr,
		CoalesceBatch:  batch,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// reportTraffic attaches ctrl-bytes/op and msgs/op to the benchmark.
func reportTraffic(b *testing.B, c *partialdsm.Cluster, ops int) {
	c.Quiesce()
	st := c.Stats()
	b.ReportMetric(float64(st.CtrlBytes)/float64(ops), "ctrl-B/op")
	b.ReportMetric(float64(st.Msgs)/float64(ops), "msgs/op")
}

// BenchmarkWrite measures the application-visible write latency of each
// protocol on an 8-node full replication cluster: wait-free protocols
// return immediately, Sequential and Atomic pay for ordering.
func BenchmarkWrite(b *testing.B) {
	placement := make([][]string, 8)
	for i := range placement {
		placement[i] = []string{"x"}
	}
	for _, cons := range partialdsm.Consistencies {
		b.Run(string(cons), func(b *testing.B) {
			c := benchCluster(b, cons, placement)
			h := c.Node(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.Write("x", int64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportTraffic(b, c, b.N)
		})
	}
}

// BenchmarkRead measures read latency: local for everything except
// Atomic, which pays a round trip to the primary.
func BenchmarkRead(b *testing.B) {
	placement := make([][]string, 8)
	for i := range placement {
		placement[i] = []string{"x"}
	}
	for _, cons := range partialdsm.Consistencies {
		b.Run(string(cons), func(b *testing.B) {
			c := benchCluster(b, cons, placement)
			if err := c.Node(0).Write("x", 42); err != nil {
				b.Fatal(err)
			}
			c.Quiesce()
			h := c.Node(1) // non-primary reader
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Read("x"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkControlOverhead is experiment E9: write-only workload on a
// ring of N nodes; compare the per-op control bytes across protocols
// and sizes. The shape to observe: causal-full and causal-partial grow
// with N, pram and slow stay flat.
func BenchmarkControlOverhead(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		for _, cons := range []partialdsm.Consistency{
			partialdsm.CausalFull, partialdsm.CausalPartial, partialdsm.PRAM, partialdsm.Slow,
		} {
			b.Run(fmt.Sprintf("%s/n=%d", cons, n), func(b *testing.B) {
				c := benchCluster(b, cons, ringPlacement(n))
				handles := make([]*partialdsm.NodeHandle, n)
				for i := range handles {
					handles[i] = c.Node(i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					node := i % n
					v := fmt.Sprintf("x%d", node)
					if err := handles[node].Write(v, int64(i)+1); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportTraffic(b, c, b.N)
			})
		}
	}
}

// BenchmarkHoopAwareAblation is experiment E15: the message volume of
// the three causal/PRAM designs on a star (most processes
// x-irrelevant) versus a ring (everyone x-relevant).
func BenchmarkHoopAwareAblation(b *testing.B) {
	topologies := map[string][][]string{
		"star9": starPlacement(9),
		"ring9": ringPlacement(9),
	}
	for name, placement := range topologies {
		for _, cons := range []partialdsm.Consistency{
			partialdsm.CausalPartial, partialdsm.CausalHoopAware, partialdsm.PRAM,
		} {
			b.Run(fmt.Sprintf("%s/%s", name, cons), func(b *testing.B) {
				c := benchCluster(b, cons, placement)
				vars := c.Vars()
				handles := make(map[string]*partialdsm.NodeHandle)
				for _, v := range vars {
					handles[v] = c.Node(c.Clique(v)[0])
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v := vars[i%len(vars)]
					if err := handles[v].Write(v, int64(i)+1); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				reportTraffic(b, c, b.N)
			})
		}
	}
}

// BenchmarkBellmanFord is experiment E10/E11 at growing graph sizes:
// one full distributed shortest-path computation per iteration, on
// each transport — the paper's broadcast-heavy case study is where the
// sharded engine's batching shows.
func BenchmarkBellmanFord(b *testing.B) {
	for _, n := range []int{5, 10, 20} {
		for _, tr := range partialdsm.Transports {
			for _, batch := range []int{1, 16} {
				b.Run(fmt.Sprintf("n=%d/%s/coalesce=%d", n, tr, batch), func(b *testing.B) {
					g := bellmanford.RandomGraph(rand.New(rand.NewSource(7)), n, 2*n, 9)
					placement := bellmanford.Placement(g)
					for i := 0; i < b.N; i++ {
						c, err := partialdsm.New(partialdsm.Config{
							Consistency:    partialdsm.PRAM,
							PlacementLists: placement,
							Seed:           1,
							DisableTrace:   true,
							Transport:      tr,
							CoalesceBatch:  batch,
						})
						if err != nil {
							b.Fatal(err)
						}
						nodes := make([]bellmanford.Node, c.NumNodes())
						for j := range nodes {
							nodes[j] = c.Node(j)
						}
						if _, err := bellmanford.Run(nodes, g, 0); err != nil {
							b.Fatal(err)
						}
						c.Close()
					}
				})
			}
		}
	}
}

// BenchmarkUpdateStorm is the message-heaviest cluster workload: PRAM
// over full replication on 16 nodes, so every write multicasts to 15
// replicas; an iteration is a 64-write burst plus the quiescence that
// waits out all 960 deliveries. The sharded transport's batched drains
// are built for exactly this shape.
func BenchmarkUpdateStorm(b *testing.B) {
	const nodes, burst = 16, 64
	placement := make([][]string, nodes)
	for i := range placement {
		placement[i] = []string{"x"}
	}
	for _, tr := range partialdsm.Transports {
		for _, batch := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/coalesce=%d", tr, batch), func(b *testing.B) {
				c := benchClusterT(b, partialdsm.PRAM, placement, tr, batch)
				h := c.Node(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for k := 0; k < burst; k++ {
						if err := h.Write("x", int64(i*burst+k)+1); err != nil {
							b.Fatal(err)
						}
					}
					c.Quiesce()
				}
				b.StopTimer()
				reportTraffic(b, c, b.N*burst)
			})
		}
	}
}

// BenchmarkQuiesce measures the settle time of a burst of updates on a
// 16-node ring under PRAM.
func BenchmarkQuiesce(b *testing.B) {
	c := benchCluster(b, partialdsm.PRAM, ringPlacement(16))
	h := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			if err := h.Write("x0", int64(i*16+k)+1); err != nil {
				b.Fatal(err)
			}
		}
		c.Quiesce()
	}
}
