package partialdsm

import (
	"testing"
	"time"
)

// TestOperationalSeparationPRAMvsCausal constructs, deterministically,
// a live PRAM execution that is NOT causally consistent — the
// operational counterpart of the paper's Figure 3/Theorem 1 argument.
//
// Topology: the hoop placement (C(x) = {0,2}, node 1 bridges via y).
// Schedule: the link 0→2 is paused, so node 2 receives nothing directly
// from node 0, while the dependency chain w0(x) ↦ w0(y) ↦ r1(y) ↦
// w1(y') ↦ r2(y') flows through node 1. Under PRAM node 2 may then read
// x = ⊥ although it has observed y' — exactly the stale read causal
// consistency forbids.
func TestOperationalSeparationPRAMvsCausal(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: hoopPlacement(), Seed: 1})
	n0, n1, n2 := c.Node(0), c.Node(1), c.Node(2)

	c.PauseLink(0, 2)
	if err := n0.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := n0.Write("y", 2); err != nil {
		t.Fatal(err)
	}
	// Node 1 observes y (link 0→1 is open) and forwards the dependency.
	waitFor(t, n1, "y", 2)
	if err := n1.Write("y", 3); err != nil {
		t.Fatal(err)
	}
	// Node 2 observes node 1's y' — under PRAM nothing relates it to
	// node 0's writes, so it arrives despite the paused 0→2 link.
	waitFor(t, n2, "y", 3)
	v, err := n2.Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if v != Bottom {
		t.Fatalf("x = %d at node 2: the schedule should have withheld it", v)
	}

	c.ResumeLink(0, 2)
	c.Quiesce()
	// The PRAM witness passes …
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("PRAM witness violated: %v", err)
	}
	// … while the exact checkers prove the recorded history violates
	// causal consistency: an executable separation of the two criteria.
	verdicts, err := c.CheckHistory()
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts["pram"] {
		t.Error("history must be PRAM consistent")
	}
	if verdicts["causal"] {
		t.Error("history must violate causal consistency (stale x after the chain)")
	}
	// The live execution lands in exactly Figure 4's class: lazy causal
	// consistent (the final reads r2(y)3 and r2(x)⊥ are lazily
	// unrelated) but not causal.
	if !verdicts["lazy-causal"] {
		t.Error("history should be lazy-causal consistent, like the paper's Figure 4")
	}
}

// TestCausalPartialBlocksUnderSameSchedule runs the identical
// adversarial schedule against the causal partial-replication protocol:
// the dependency list must hold back node 1's y' at node 2 until the
// withheld x arrives — the protocol *pays* for causality with exactly
// the information flow Theorem 1 describes.
func TestCausalPartialBlocksUnderSameSchedule(t *testing.T) {
	c := newCluster(t, Config{Consistency: CausalPartial, PlacementLists: hoopPlacement(), Seed: 2})
	n0, n1, n2 := c.Node(0), c.Node(1), c.Node(2)

	c.PauseLink(0, 2)
	if err := n0.Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := n0.Write("y", 2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, n1, "y", 2)
	if err := n1.Write("y", 3); err != nil {
		t.Fatal(err)
	}
	// Give node 1's update ample time to reach node 2; it must stay
	// buffered because its dependency list names node 0's withheld
	// writes.
	time.Sleep(20 * time.Millisecond)
	if v, _ := n2.Read("y"); v != Bottom {
		t.Fatalf("node 2 observed y=%d although its causal dependencies were withheld", v)
	}

	c.ResumeLink(0, 2)
	c.Quiesce()
	if v, _ := n2.Read("y"); v != 3 {
		t.Fatalf("after resume, y = %d, want 3", v)
	}
	if v, _ := n2.Read("x"); v != 1 {
		t.Fatalf("after resume, x = %d, want 1", v)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("causal witness violated: %v", err)
	}
	verdicts, err := c.CheckHistory()
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts["causal"] {
		t.Error("causal protocol produced a non-causal history")
	}
}

// waitFor polls a variable until it reaches the wanted value.
func waitFor(t *testing.T, n *NodeHandle, x string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := n.Read(x)
		if err != nil {
			t.Fatal(err)
		}
		if v == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never observed %s = %d (last %d)", n.ID(), x, want, v)
		}
		time.Sleep(50 * time.Microsecond)
	}
}
